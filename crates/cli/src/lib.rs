//! Implementation of the `triad` command-line interface.
//!
//! Kept as a library so every command is unit-testable without spawning
//! processes; [`run`] takes raw arguments and returns the stdout text.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod args;
mod commands;
mod net;

pub use args::{ArgMap, CliError};

/// The usage text printed on argument errors.
pub const USAGE: &str = "\
usage: triad <command> [options]

commands:
  gen        generate a graph
             --kind far|gnp|dense-core|mu|clique-path|powerlaw  --n N  --out FILE
             [--d D] [--eps E] [--seed S] [--hubs H] [--gamma G] [--clique C] [--beta B]
             [--format edges|csr]   (csr streams edges straight into the
             binary container of docs/IO.md — far/gnp/powerlaw/dense-core
             never materialize the edge list, so million-edge graphs
             write in O(n + window) memory)
  partition  split a graph's edges among k players
             --graph FILE  --k K  --out PREFIX
             [--scheme random|duplication|vertex] [--dup-p P] [--seed S]
  info       print graph statistics and farness certificates
             --graph FILE [--eps E]
  test       run a testing protocol over a partitioned input
             --graph FILE  --shares PREFIX  --protocol unrestricted|low|high|oblivious|exact
             (or out-of-core: --graph-file FILE.csr --k K
             [--scheme random|duplication|vertex] [--dup-p P]
             [--partition-seed S] — opens the binary CSR container of
             docs/IO.md read-only (mmap when available), partitions its
             edges in-process, and runs graph-free; --breakdown and
             --record full need the in-memory path)
             [--eps E] [--seed S] [--cost-model coordinator|blackboard|message-passing]
             [--d D] [--breakdown true]   (per-phase bits; unrestricted only)
             [--reps R]   (amplify: up to R repetitions, first witness wins)
             [--record tally|full]   (cost recorder: counters-only fast
             path (default) or full event log — totals are identical,
             see docs/RUNTIME.md)
             [--payload auto|edges|bits]   (edge-payload representation;
             verdicts and recorded bits are identical, see docs/RUNTIME.md)
  chaos      run a protocol's amplified sweep under deterministic fault
             injection and report the quorum-gated verdict (docs/FAULTS.md)
             --graph FILE  --shares PREFIX  --protocol unrestricted|low|high|oblivious|exact
             (or out-of-core: --graph-file FILE.csr --k K [--scheme …]
             [--partition-seed S], exactly as in `test`)
             [--rate R] [--faults omission|mixed] [--fault-seed S]
             [--reps R] [--quorum Q] [--eps E] [--seed S] [--d D]
             [--payload auto|edges|bits]
  count      estimate the triangle count in one round
             --graph FILE  --shares PREFIX  [--p P] [--trials T] [--seed S]
  hfree      test H-freeness in one round
             --graph FILE  --shares PREFIX  --pattern k3|k4|k5|c4|c5
             [--eps E] [--seed S] [--d D]
  congest    run the distributed (CONGEST) tester, optionally counting
             --graph FILE [--max-rounds R] [--count-iterations I] [--seed S]
  report     generate an input, run a protocol, and emit a structured cost
             report (see docs/OBSERVABILITY.md for the JSON schema)
             --protocol unrestricted|sim-low|sim-high|sim-oblivious|exact
             --gen planted|gnp|powerlaw|dense-core  --n N  --k K
             [--d D] [--eps E] [--seed S] [--json] [--out FILE] [--transcript FILE]
             [--record full]   (the per-event breakdowns need the full
             recorder; a tally-only run is refused with a hint)
  serve      host a networked coordinator run over TCP; waits for k
             players, drives the protocol, prints the `triad test`
             verdict/stats lines (wire format: docs/NETWORKING.md)
             --bind ADDR  --k K  --protocol unrestricted|low|high|oblivious|exact
             (--graph FILE | --n N)
             [--eps E] [--seed S] [--d D] [--cost-model M]
             [--payload auto|edges|bits] [--timeout-secs T] [--port-file FILE]   (written after bind,
             so `--bind 127.0.0.1:0` publishes its ephemeral port; removed
             on graceful exit)
             [--runs R]   (persistent mode: keep the registered players
             and dispatch R successive sessions over the one
             registration, re-seeding each via AdoptShared —
             docs/NETWORKING.md)
             [--auth-token T]   (require every Hello to present this
             shared secret; mismatches get a typed Unauthorized frame)
             [--window-ms W]   (hold a slot whose connection dies mid-run
             open for W ms awaiting a resume claim; an expired window
             degrades that run to inconclusive and the daemon proceeds —
             docs/NETWORKING.md)
             [--deadline-ms D]   (census deadline: how long to wait for
             all k registrations; defaults to --timeout-secs)
  connect    join a `triad serve` run as one player; loads the share
             `PREFIX.J` for the slot the coordinator assigns
             --addr HOST:PORT  --shares PREFIX
             [--slot J] [--timeout-secs T] [--auth-token T]
             [--connect-retries N] [--backoff-ms B]   (bounded exponential
             backoff on refused dials and rejoin races; also bounds
             mid-run reconnect attempts)
             [--session-file FILE]   (persist the resume credential so a
             relaunched process reclaims its slot inside the daemon's
             reconnect window; removed on a clean farewell)
  bench      scheduler saturation microbench: run one batch of N
             sessions over 1/2/4/8-worker pools and print queries/sec
             at each (results asserted identical across worker counts —
             docs/RUNTIME.md); worker counts beyond the machine's cores
             are clamped and flagged `[effective W]`
             --sessions N  [--quick]
             (or out-of-core: --graph-file FILE.csr [--reps R] — time the
             triangle kernels and one prepared protocol run over the
             mapped container, with peak-RSS / owned-bytes evidence)

global options:
  --threads N  size of the deterministic worker pool for amplified runs
               and sweeps (default: TRIAD_THREADS or available
               parallelism; output is identical at every thread count —
               see docs/PARALLELISM.md)
";

/// Executes one CLI invocation, returning the text to print.
///
/// # Errors
///
/// Returns [`CliError::Usage`] for malformed arguments and other
/// variants for I/O or protocol failures.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let (command, rest) = args
        .split_first()
        .ok_or_else(|| CliError::Usage("missing command".into()))?;
    let map = ArgMap::parse(rest)?;
    if let Some(raw) = map.optional("threads") {
        let threads: usize = raw.parse().ok().filter(|n| *n > 0).ok_or_else(|| {
            CliError::Usage(format!("--threads needs a positive integer, got `{raw}`"))
        })?;
        triad_comm::pool::set_threads(threads);
    }
    match command.as_str() {
        "gen" => commands::gen(&map),
        "partition" => commands::partition(&map),
        "info" => commands::info(&map),
        "test" => commands::test(&map),
        "chaos" => commands::chaos(&map),
        "count" => commands::count(&map),
        "hfree" => commands::hfree(&map),
        "congest" => commands::congest(&map),
        "report" => commands::report(&map),
        "bench" => commands::bench(&map),
        "serve" => net::serve(&map),
        "connect" => net::connect(&map),
        other => Err(CliError::Usage(format!("unknown command `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn unknown_command_is_usage_error() {
        let err = run(&argv("frobnicate --x 1")).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
    }

    #[test]
    fn missing_command_is_usage_error() {
        assert!(matches!(run(&[]).unwrap_err(), CliError::Usage(_)));
    }

    #[test]
    fn end_to_end_pipeline_in_tempdir() {
        let dir = std::env::temp_dir().join(format!("triad-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let g = dir.join("g.el");
        let shares = dir.join("p");
        let out = run(&argv(&format!(
            "gen --kind far --n 400 --d 8 --eps 0.2 --seed 1 --out {}",
            g.display()
        )))
        .unwrap();
        assert!(out.contains("wrote"), "{out}");
        let out = run(&argv(&format!(
            "partition --graph {} --k 4 --scheme random --seed 2 --out {}",
            g.display(),
            shares.display()
        )))
        .unwrap();
        assert!(out.contains("4 shares"), "{out}");
        let out = run(&argv(&format!("info --graph {} --eps 0.2", g.display()))).unwrap();
        assert!(out.contains("vertices: 400"), "{out}");
        assert!(out.contains("certified 0.2-far: yes"), "{out}");
        let out = run(&argv(&format!(
            "test --graph {} --shares {} --protocol low --eps 0.2 --seed 3 --d 8",
            g.display(),
            shares.display()
        )))
        .unwrap();
        assert!(out.contains("bits"), "{out}");
        assert!(
            out.contains("triangle") || out.contains("accepted"),
            "{out}"
        );
        // The two recorder modes must print byte-identical results: the
        // tally fast path changes bookkeeping, never totals.
        let tally = run(&argv(&format!(
            "test --graph {} --shares {} --protocol low --eps 0.2 --seed 3 --d 8 \
             --reps 4 --record tally",
            g.display(),
            shares.display()
        )))
        .unwrap();
        let full = run(&argv(&format!(
            "test --graph {} --shares {} --protocol low --eps 0.2 --seed 3 --d 8 \
             --reps 4 --record full",
            g.display(),
            shares.display()
        )))
        .unwrap();
        assert_eq!(tally, full, "recorder modes diverged");
        let err = run(&argv(&format!(
            "test --graph {} --shares {} --protocol low --record sometimes",
            g.display(),
            shares.display()
        )))
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
        let out = run(&argv(&format!(
            "count --graph {} --shares {} --p 0.5 --trials 4",
            g.display(),
            shares.display()
        )))
        .unwrap();
        assert!(out.contains("estimated triangles"), "{out}");
        let out = run(&argv(&format!(
            "hfree --graph {} --shares {} --pattern k3 --eps 0.2",
            g.display(),
            shares.display()
        )))
        .unwrap();
        assert!(
            out.contains("copy found") || out.contains("accepted"),
            "{out}"
        );
        let out = run(&argv(&format!(
            "congest --graph {} --max-rounds 100 --count-iterations 10",
            g.display()
        )))
        .unwrap();
        assert!(out.contains("tester:"), "{out}");
        assert!(out.contains("counter:"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn report_json_phases_sum_to_total_bits() {
        // The ISSUE acceptance command: a self-contained report run whose
        // per-phase bit totals partition the measured total exactly.
        let out = run(&argv(
            "report --protocol sim-oblivious --gen planted --n 1024 --k 8 --json",
        ))
        .unwrap();
        let total: u64 = out
            .lines()
            .find_map(|l| l.trim().strip_prefix("\"total_bits\": "))
            .and_then(|v| v.trim_end_matches(',').parse().ok())
            .expect("total_bits field");
        assert!(total > 0);
        let phases_block = out
            .split("\"phases\": [")
            .nth(1)
            .and_then(|rest| rest.split(']').next())
            .expect("phases array");
        let phase_sum: u64 = phases_block
            .split("\"bits\":")
            .skip(1)
            .map(|s| {
                s.split(',')
                    .next()
                    .unwrap()
                    .trim()
                    .parse::<u64>()
                    .expect("bits value")
            })
            .sum();
        assert_eq!(
            phase_sum, total,
            "per-phase bits must partition total_bits:\n{out}"
        );
        assert!(out.contains("\"schema_version\": 1"), "{out}");
        assert!(out.contains("\"predicted\": {\"formula\": "), "{out}");
    }

    #[test]
    fn report_writes_transcript_and_out_files() {
        let dir = std::env::temp_dir().join(format!("triad-cli-report-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let report_path = dir.join("report.json");
        let events_path = dir.join("events.json");
        let out = run(&argv(&format!(
            "report --protocol unrestricted --gen planted --n 300 --k 4 --d 6 --eps 0.2 \
             --seed 3 --json --out {} --transcript {}",
            report_path.display(),
            events_path.display()
        )))
        .unwrap();
        assert!(out.contains("wrote"), "{out}");
        let report = std::fs::read_to_string(&report_path).unwrap();
        assert!(
            report.contains("\"protocol\": \"unrestricted\""),
            "{report}"
        );
        let events = std::fs::read_to_string(&events_path).unwrap();
        let parsed = triad_comm::parse_events_json(&events).unwrap();
        assert!(!parsed.is_empty());
        let event_bits: u64 = parsed.iter().map(|e| e.bits).sum();
        let total: u64 = report
            .lines()
            .find_map(|l| l.trim().strip_prefix("\"total_bits\": "))
            .and_then(|v| v.trim_end_matches(',').parse().ok())
            .unwrap();
        assert_eq!(
            event_bits, total,
            "exported events must carry every charged bit"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn experiments_md_commands_parse() {
        // Every `triad …` command listed in EXPERIMENTS.md must stay
        // valid: known subcommand, parseable arguments, and all options
        // the subcommand requires present.
        let md = std::fs::read_to_string(
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../EXPERIMENTS.md"),
        )
        .expect("EXPERIMENTS.md at repo root");
        let commands: Vec<&str> = md
            .lines()
            .map(str::trim)
            .filter(|l| l.starts_with("triad "))
            .collect();
        assert!(
            commands.len() >= 8,
            "EXPERIMENTS.md should list the triad report commands, found {commands:?}"
        );
        for line in commands {
            let tokens = argv(line.strip_prefix("triad ").unwrap());
            let (command, rest) = tokens.split_first().unwrap();
            let map = ArgMap::parse(rest).unwrap_or_else(|e| panic!("`{line}`: {e}"));
            match command.as_str() {
                "report" => {
                    for key in ["protocol", "gen"] {
                        map.required(key)
                            .unwrap_or_else(|e| panic!("`{line}`: {e}"));
                    }
                    map.required_parsed::<usize>("n")
                        .unwrap_or_else(|e| panic!("`{line}`: {e}"));
                    map.required_parsed::<usize>("k")
                        .unwrap_or_else(|e| panic!("`{line}`: {e}"));
                }
                "chaos" => {
                    map.required("protocol")
                        .unwrap_or_else(|e| panic!("`{line}`: {e}"));
                    if map.optional("graph-file").is_some() {
                        map.required_parsed::<usize>("k")
                            .unwrap_or_else(|e| panic!("`{line}`: {e}"));
                    } else {
                        for key in ["graph", "shares"] {
                            map.required(key)
                                .unwrap_or_else(|e| panic!("`{line}`: {e}"));
                        }
                    }
                }
                "serve" => {
                    for key in ["bind", "k", "protocol"] {
                        map.required(key)
                            .unwrap_or_else(|e| panic!("`{line}`: {e}"));
                    }
                    if map.optional("graph").is_none() {
                        map.required_parsed::<usize>("n")
                            .unwrap_or_else(|e| panic!("`{line}`: {e}"));
                    }
                }
                "connect" => {
                    for key in ["addr", "shares"] {
                        map.required(key)
                            .unwrap_or_else(|e| panic!("`{line}`: {e}"));
                    }
                }
                "bench" => {
                    if map.optional("graph-file").is_none() {
                        map.required_parsed::<usize>("sessions")
                            .unwrap_or_else(|e| panic!("`{line}`: {e}"));
                    }
                }
                "gen" | "partition" | "info" | "test" | "count" | "hfree" | "congest" => {}
                other => panic!("`{line}`: unknown subcommand `{other}`"),
            }
        }
    }

    #[test]
    fn chaos_command_reports_quorum_verdicts() {
        let dir = std::env::temp_dir().join(format!("triad-cli-chaos-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let g = dir.join("g.el");
        let shares = dir.join("p");
        run(&argv(&format!(
            "gen --kind far --n 300 --d 6 --eps 0.2 --seed 1 --out {}",
            g.display()
        )))
        .unwrap();
        run(&argv(&format!(
            "partition --graph {} --k 3 --seed 2 --out {}",
            g.display(),
            shares.display()
        )))
        .unwrap();
        // Fault-free chaos is the plain amplified run: the far graph's
        // witness must surface exactly as `triad test` finds it.
        let clean = run(&argv(&format!(
            "chaos --graph {} --shares {} --protocol unrestricted --eps 0.2 --seed 3 \
             --reps 4 --rate 0.0",
            g.display(),
            shares.display()
        )))
        .unwrap();
        assert!(clean.contains("triangle"), "{clean}");
        assert!(clean.contains("failures: 0"), "{clean}");
        assert!(clean.contains("0 bits retransmitted"), "{clean}");
        // Total omission kills every repetition: the verdict must be an
        // explicit refusal, never an accept.
        let dark = run(&argv(&format!(
            "chaos --graph {} --shares {} --protocol unrestricted --eps 0.2 --seed 3 \
             --reps 4 --rate 1.0 --faults omission",
            g.display(),
            shares.display()
        )))
        .unwrap();
        assert!(dark.contains("inconclusive"), "{dark}");
        assert!(dark.contains("survived 0/4"), "{dark}");
        let err = run(&argv(&format!(
            "chaos --graph {} --shares {} --protocol unrestricted --faults always",
            g.display(),
            shares.display()
        )))
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn report_refuses_tally_recorder_with_hint() {
        let err = run(&argv(
            "report --protocol sim-low --gen planted --n 300 --k 4 --record tally",
        ))
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("--record full"), "{msg}");
        assert!(msg.contains("per-event transcript"), "{msg}");
        let err = run(&argv(
            "report --protocol sim-low --gen planted --n 300 --k 4 --record sometimes",
        ))
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
    }

    /// Polls `path` until the serve side has published its ephemeral
    /// port, then returns the `host:port` it wrote.
    fn wait_for_port_file(path: &std::path::Path) -> String {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
        loop {
            if let Ok(s) = std::fs::read_to_string(path) {
                let s = s.trim().to_string();
                if !s.is_empty() {
                    return s;
                }
            }
            assert!(
                std::time::Instant::now() < deadline,
                "serve never published {path:?}"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
    }

    /// One full serve/connect cycle over loopback, entirely in-process:
    /// returns (serve output, connect outputs). `extra` is appended to
    /// the serve command (e.g. `--runs 2`), `connect_extra` to every
    /// connect command (e.g. `--auth-token s3cr3t`).
    fn loopback_cycle_with(
        dir: &std::path::Path,
        g: &std::path::Path,
        shares: &std::path::Path,
        protocol: &str,
        k: usize,
        extra: &str,
        connect_extra: &str,
    ) -> (String, Vec<String>) {
        let port_file = dir.join(format!("port-{protocol}"));
        let serve_cmd = format!(
            "serve --bind 127.0.0.1:0 --k {k} --protocol {protocol} --graph {} \
             --eps 0.2 --seed 3 --d 8 --port-file {} --timeout-secs 20 {extra}",
            g.display(),
            port_file.display()
        );
        let server = std::thread::spawn(move || run(&argv(&serve_cmd)));
        let addr = wait_for_port_file(&port_file);
        let players: Vec<_> = (0..k)
            .map(|_| {
                let connect_cmd = format!(
                    "connect --addr {addr} --shares {} --timeout-secs 20 {connect_extra}",
                    shares.display()
                );
                std::thread::spawn(move || run(&argv(&connect_cmd)))
            })
            .collect();
        let served = server.join().unwrap().unwrap();
        let connected = players
            .into_iter()
            .map(|p| p.join().unwrap().unwrap())
            .collect();
        (served, connected)
    }

    /// [`loopback_cycle_with`] without connect-side extras.
    fn loopback_cycle(
        dir: &std::path::Path,
        g: &std::path::Path,
        shares: &std::path::Path,
        protocol: &str,
        k: usize,
        extra: &str,
    ) -> (String, Vec<String>) {
        loopback_cycle_with(dir, g, shares, protocol, k, extra, "")
    }

    #[test]
    fn serve_connect_loopback_matches_triad_test_byte_for_byte() {
        // The ISSUE acceptance scenario: a k=3 run over loopback TCP
        // must print the same verdict and bit-accounting lines as the
        // in-process `triad test` over the same partition — the
        // recorders charge logical bits, never wire bytes.
        let dir = std::env::temp_dir().join(format!("triad-cli-serve-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let g = dir.join("g.el");
        let shares = dir.join("p");
        run(&argv(&format!(
            "gen --kind far --n 300 --d 8 --eps 0.2 --seed 1 --out {}",
            g.display()
        )))
        .unwrap();
        run(&argv(&format!(
            "partition --graph {} --k 3 --scheme random --seed 2 --out {}",
            g.display(),
            shares.display()
        )))
        .unwrap();
        for protocol in ["low", "unrestricted"] {
            let reference = run(&argv(&format!(
                "test --graph {} --shares {} --protocol {protocol} --eps 0.2 --seed 3 \
                 --d 8 --reps 1",
                g.display(),
                shares.display()
            )))
            .unwrap();
            let (served, connected) = loopback_cycle(&dir, &g, &shares, protocol, 3, "");
            let expected: Vec<&str> = reference.lines().collect();
            let got: Vec<&str> = served.lines().collect();
            assert_eq!(
                &got[..2], &expected[..2],
                "{protocol}: served run diverged from triad test\nserved:\n{served}\nreference:\n{reference}"
            );
            assert!(got[2].contains("served 3 players"), "{served}");
            for out in &connected {
                assert!(out.contains("coordinator verdict:"), "{out}");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_persistent_mode_runs_two_sessions_over_one_registration() {
        // Persistent mode: `--runs 2` dispatches two sessions over the
        // one registration. Session 0 must match the single-run seed
        // derivation exactly — its lines are `triad test --reps 1`'s
        // first two lines under a `run 0:` prefix — and the players
        // must be re-keyed (AdoptShared), not re-registered.
        let dir = std::env::temp_dir().join(format!("triad-cli-persist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let g = dir.join("g.el");
        let shares = dir.join("p");
        run(&argv(&format!(
            "gen --kind far --n 300 --d 8 --eps 0.2 --seed 1 --out {}",
            g.display()
        )))
        .unwrap();
        run(&argv(&format!(
            "partition --graph {} --k 3 --scheme random --seed 2 --out {}",
            g.display(),
            shares.display()
        )))
        .unwrap();
        let reference = run(&argv(&format!(
            "test --graph {} --shares {} --protocol low --eps 0.2 --seed 3 --d 8 --reps 1",
            g.display(),
            shares.display()
        )))
        .unwrap();
        let (served, connected) = loopback_cycle(&dir, &g, &shares, "low", 3, "--runs 2");
        let expected: Vec<&str> = reference.lines().collect();
        let got: Vec<&str> = served.lines().collect();
        assert_eq!(got.len(), 5, "2 runs x 2 lines + roster:\n{served}");
        assert_eq!(got[0], format!("run 0: {}", expected[0]), "{served}");
        assert_eq!(got[1], format!("run 0: {}", expected[1]), "{served}");
        assert!(got[2].starts_with("run 1: "), "{served}");
        assert!(got[3].starts_with("run 1: "), "{served}");
        assert!(
            got[4].contains("served 3 players") && got[4].contains("2 sessions"),
            "{served}"
        );
        // Each player answered both sessions over its one connection.
        for out in &connected {
            assert!(out.contains("served 2 requests"), "{out}");
            assert!(out.contains("coordinator verdict:"), "{out}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn port_file_is_atomic_and_removed_on_exit() {
        // A concurrent poller hammering the port file must only ever
        // see nothing or one complete `host:port` line (the write is
        // temp-file + rename), and the file must be gone once serve
        // returns.
        let dir = std::env::temp_dir().join(format!("triad-cli-portfile-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let g = dir.join("g.el");
        let shares = dir.join("p");
        run(&argv(&format!(
            "gen --kind far --n 200 --d 6 --eps 0.2 --seed 1 --out {}",
            g.display()
        )))
        .unwrap();
        run(&argv(&format!(
            "partition --graph {} --k 1 --seed 2 --out {}",
            g.display(),
            shares.display()
        )))
        .unwrap();
        let port_file = dir.join("port");
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let reader = {
            let path = port_file.clone();
            let stop = std::sync::Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut reads = 0u64;
                while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                    if let Ok(s) = std::fs::read_to_string(&path) {
                        reads += 1;
                        assert!(
                            s.ends_with('\n') && s.trim().parse::<std::net::SocketAddr>().is_ok(),
                            "partial port-file read: {s:?}"
                        );
                    }
                    std::thread::yield_now();
                }
                reads
            })
        };
        let serve_cmd = format!(
            "serve --bind 127.0.0.1:0 --k 1 --protocol exact --graph {} \
             --seed 3 --port-file {} --timeout-secs 20",
            g.display(),
            port_file.display()
        );
        let server = std::thread::spawn(move || run(&argv(&serve_cmd)));
        let addr = wait_for_port_file(&port_file);
        let connect_cmd = format!(
            "connect --addr {addr} --shares {} --timeout-secs 20",
            shares.display()
        );
        let player = std::thread::spawn(move || run(&argv(&connect_cmd)));
        server.join().unwrap().unwrap();
        player.join().unwrap().unwrap();
        stop.store(true, std::sync::atomic::Ordering::SeqCst);
        let reads = reader.join().unwrap();
        assert!(reads > 0, "the poller never saw the published port");
        assert!(
            !port_file.exists(),
            "port file must be removed on graceful exit"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bench_sessions_prints_throughput_table() {
        let out = run(&argv("bench --sessions 2 --quick")).unwrap();
        assert!(out.contains("scheduler saturation: 2 sessions"), "{out}");
        for w in [1usize, 2, 4, 8] {
            assert!(out.contains(&format!("{w} worker(s):")), "{out}");
        }
        assert!(out.contains("queries/sec"), "{out}");
        assert!(out.contains("saturation speedup"), "{out}");
        for bad in [
            "bench --quick",
            "bench --sessions 0",
            "bench --sessions many",
        ] {
            let err = run(&argv(bad)).unwrap_err();
            assert!(matches!(err, CliError::Usage(_)), "`{bad}`: {err}");
        }
    }

    #[test]
    fn serve_rejects_bad_arguments() {
        for bad in [
            "serve --bind 127.0.0.1:0 --k 0 --protocol low --n 10",
            "serve --bind 127.0.0.1:0 --k 2 --protocol nope --n 10",
            "serve --bind 127.0.0.1:0 --k 2 --protocol low", // no --n/--graph
            "serve --k 2 --protocol low --n 10",             // no --bind
            "serve --bind 127.0.0.1:0 --k 2 --protocol low --n 10 --runs 0",
            "serve --bind 127.0.0.1:0 --k 2 --protocol low --n 10 --deadline-ms 0",
            "serve --bind 127.0.0.1:0 --k 2 --protocol low --n 10 --deadline-ms soon",
            "serve --bind 127.0.0.1:0 --k 2 --protocol low --n 10 --window-ms forever",
        ] {
            let err = run(&argv(bad)).unwrap_err();
            assert!(matches!(err, CliError::Usage(_)), "`{bad}`: {err}");
        }
        for bad in [
            "connect --addr 127.0.0.1:1",
            "connect --addr 127.0.0.1:1 --shares x --connect-retries lots",
            "connect --addr 127.0.0.1:1 --shares x --backoff-ms slow",
        ] {
            let err = run(&argv(bad)).unwrap_err();
            assert!(matches!(err, CliError::Usage(_)), "`{bad}`: {err}");
        }
    }

    #[test]
    fn serve_with_auth_token_gates_clients_and_session_files_are_retired() {
        // An authenticated daemon with a reconnect window: a client with
        // the wrong token is refused with a typed error, clients with
        // the right token complete the run byte-identically to an
        // unauthenticated one, and the resume credential written to
        // --session-file is removed again on the clean farewell.
        let dir = std::env::temp_dir().join(format!("triad-cli-auth-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let g = dir.join("g.el");
        let shares = dir.join("p");
        run(&argv(&format!(
            "gen --kind far --n 200 --d 6 --eps 0.2 --seed 1 --out {}",
            g.display()
        )))
        .unwrap();
        run(&argv(&format!(
            "partition --graph {} --k 1 --seed 2 --out {}",
            g.display(),
            shares.display()
        )))
        .unwrap();
        let port_file = dir.join("port-auth");
        let session_file = dir.join("session.0");
        let serve_cmd = format!(
            "serve --bind 127.0.0.1:0 --k 1 --protocol exact --graph {} --seed 3 \
             --port-file {} --timeout-secs 20 --auth-token s3cr3t --window-ms 5000",
            g.display(),
            port_file.display()
        );
        let server = std::thread::spawn(move || run(&argv(&serve_cmd)));
        let addr = wait_for_port_file(&port_file);
        // Wrong token: refused with a typed NetError, daemon survives.
        let err = run(&argv(&format!(
            "connect --addr {addr} --shares {} --timeout-secs 20 --auth-token nope",
            shares.display()
        )))
        .unwrap_err();
        assert!(err.to_string().contains("unauthorized"), "{err}");
        // Right token: the run completes and the session file — written
        // while serving (the daemon issued a live nonce) — is retired
        // with the farewell.
        let out = run(&argv(&format!(
            "connect --addr {addr} --shares {} --timeout-secs 20 --auth-token s3cr3t \
             --session-file {}",
            shares.display(),
            session_file.display()
        )))
        .unwrap();
        assert!(out.contains("coordinator verdict:"), "{out}");
        let served = server.join().unwrap().unwrap();
        assert!(served.contains("served 1 players"), "{served}");
        assert!(
            !session_file.exists(),
            "a clean farewell must retire the resume credential"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn out_of_core_pipeline_runs_every_protocol_graph_free() {
        // gen --format csr writes the docs/IO.md container; test, chaos
        // and bench then run straight over the mapping (or the buffered
        // fallback under TRIAD_NO_MMAP) without ever loading an edge
        // list — and repeated runs are deterministic.
        let dir = std::env::temp_dir().join(format!("triad-cli-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let csr = dir.join("g.csr");
        let out = run(&argv(&format!(
            "gen --kind far --n 600 --d 8 --eps 0.2 --seed 1 --format csr --out {}",
            csr.display()
        )))
        .unwrap();
        assert!(out.contains("binary CSR"), "{out}");
        for protocol in ["unrestricted", "low", "high", "oblivious", "exact"] {
            let cmd = format!(
                "test --graph-file {} --k 4 --protocol {protocol} --eps 0.2 --seed 3 --reps 2",
                csr.display()
            );
            let first = run(&argv(&cmd)).unwrap();
            assert!(first.contains("bits"), "{protocol}: {first}");
            assert_eq!(
                first,
                run(&argv(&cmd)).unwrap(),
                "{protocol} not deterministic"
            );
        }
        let chaos_out = run(&argv(&format!(
            "chaos --graph-file {} --k 3 --scheme vertex --protocol low --reps 4 --rate 0.0",
            csr.display()
        )))
        .unwrap();
        assert!(chaos_out.contains("failures: 0"), "{chaos_out}");
        assert!(chaos_out.contains("0 bits retransmitted"), "{chaos_out}");
        let bench_out = run(&argv(&format!(
            "bench --graph-file {} --reps 1",
            csr.display()
        )))
        .unwrap();
        assert!(bench_out.contains("store bench:"), "{bench_out}");
        assert!(bench_out.contains("forward kernel:"), "{bench_out}");
        // The in-memory-only switches are refused with a hint, not
        // silently ignored.
        for bad in [
            format!(
                "test --graph-file {} --k 4 --protocol unrestricted --breakdown",
                csr.display()
            ),
            format!(
                "test --graph-file {} --k 4 --protocol low --record full",
                csr.display()
            ),
            format!("test --graph-file {} --k 0 --protocol low", csr.display()),
            format!(
                "gen --kind far --n 60 --format json --out {}",
                dir.join("x").display()
            ),
        ] {
            let err = run(&argv(&bad)).unwrap_err();
            assert!(matches!(err, CliError::Usage(_)), "`{bad}`: {err}");
        }
        // A truncated container is rejected up front (CliError::Store).
        let bytes = std::fs::read(&csr).unwrap();
        let cut = dir.join("cut.csr");
        std::fs::write(&cut, &bytes[..bytes.len() / 2]).unwrap();
        let err = run(&argv(&format!(
            "test --graph-file {} --k 4 --protocol low",
            cut.display()
        )))
        .unwrap_err();
        assert!(matches!(err, CliError::Store(_)), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn test_rejects_missing_share_files() {
        let dir = std::env::temp_dir().join(format!("triad-cli-miss-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let g = dir.join("g.el");
        run(&argv(&format!(
            "gen --kind gnp --n 50 --d 4 --seed 1 --out {}",
            g.display()
        )))
        .unwrap();
        let err = run(&argv(&format!(
            "test --graph {} --shares {}/nope --protocol exact",
            g.display(),
            dir.display()
        )))
        .unwrap_err();
        assert!(err.to_string().contains("share"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
