//! `triad serve` / `triad connect` — the networked coordinator pair.
//!
//! `serve` binds a TCP listener, registers `k` players against the
//! expected roster, drives one protocol run over the sockets, and prints
//! the same verdict/stats lines as `triad test` (for a fault-free run
//! the bit accounting is byte-identical to the in-process transports —
//! the recorders charge logical payload bits, never wire bytes).
//! `connect` joins as one player: it loads the share named by the
//! coordinator's Welcome, then answers requests until the coordinator
//! says goodbye. The wire format is specified in `docs/NETWORKING.md`.

use crate::args::{ArgMap, CliError};
use crate::commands::load_graph;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;
use triad_comm::{
    run_simultaneous_collected, CommStats, ConnectOptions, CostModel, NetError, PayloadRepr,
    PlayerSession, PlayerState, ResumeClaim, Runtime, ServeConfig, SessionOptions,
    SharedRandomness, SharedTransport, SimMessage, SimultaneousProtocol, Tally, TcpCoordinator,
    TcpTransport, Transport,
};
use triad_protocols::amplify::rep_seed;
use triad_protocols::baseline::SendEverything;
use triad_protocols::simultaneous::{AlgHigh, AlgLow, Oblivious};
use triad_protocols::{single_run_verdict, ChaosOutcome, TestOutcome, Tuning, UnrestrictedTester};

const PROTOCOLS: [&str; 5] = ["unrestricted", "low", "high", "oblivious", "exact"];

fn parse_cost_model(args: &ArgMap) -> Result<CostModel, CliError> {
    match args.optional("cost-model").unwrap_or("coordinator") {
        "coordinator" => Ok(CostModel::Coordinator),
        "blackboard" => Ok(CostModel::Blackboard),
        "message-passing" => Ok(CostModel::MessagePassing),
        other => Err(CliError::Usage(format!("unknown --cost-model `{other}`"))),
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Removes the published port file when the serve run ends (any exit
/// path — success or error), so a later `triad connect` can never read
/// a stale port from a finished run.
struct PortFileGuard(PathBuf);

impl Drop for PortFileGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// Publishes `addr` to `path` atomically: the line is written to a
/// temp file beside the target (same filesystem) and renamed into
/// place, so a concurrent reader sees the previous contents, nothing,
/// or the complete `host:port` line — never a partial write.
fn publish_port_file(path: &str, addr: SocketAddr) -> std::io::Result<PortFileGuard> {
    let tmp = PathBuf::from(format!("{path}.tmp.{}", std::process::id()));
    std::fs::write(&tmp, format!("{addr}\n"))?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(PortFileGuard(PathBuf::from(path))),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// `triad serve` — host one or more networked coordinator runs.
///
/// The effective shared seed is `rep_seed(--seed, 0)`, exactly the seed
/// `triad test --reps 1` uses for its single repetition, so a fault-free
/// served run's first two output lines are byte-comparable to `triad
/// test` over the same partition.
///
/// With `--runs R` the daemon keeps the registered players and
/// dispatches `R` successive sessions over the same connections —
/// session `i` re-keys every player to `rep_seed(--seed, i)` with an
/// `AdoptShared` frame, no re-registration (see `docs/NETWORKING.md`,
/// "Persistent sessions").
pub fn serve(args: &ArgMap) -> Result<String, CliError> {
    let bind = args.required("bind")?;
    let k: usize = args.required_parsed("k")?;
    if k == 0 {
        return Err(CliError::Usage("--k must be positive".into()));
    }
    let protocol = args.required("protocol")?;
    if !PROTOCOLS.contains(&protocol) {
        return Err(CliError::Usage(format!("unknown --protocol `{protocol}`")));
    }
    // The coordinator has no input of its own; it only needs the vertex
    // count (and, for the degree-aware protocols, a density hint). With
    // --graph both default from the file; --n serves a run whose input
    // the coordinator never sees.
    let (n, d_default) = match args.optional("graph") {
        Some(path) => {
            let g = load_graph(path)?;
            (g.vertex_count(), g.average_degree())
        }
        None => (args.required_parsed("n")?, 8.0),
    };
    let eps: f64 = args.parsed_or("eps", 0.2)?;
    let d: f64 = args.parsed_or("d", d_default)?;
    if (protocol == "low" || protocol == "high") && d <= 0.0 {
        return Err(CliError::Usage(
            "--d must be positive for the degree-aware protocols".into(),
        ));
    }
    let seed: u64 = args.parsed_or("seed", 0)?;
    let runs: u32 = args.parsed_or("runs", 1)?;
    if runs == 0 {
        return Err(CliError::Usage("--runs must be positive".into()));
    }
    let repr: PayloadRepr = args.parsed_or("payload", PayloadRepr::Auto)?;
    let cost_model = parse_cost_model(args)?;
    let timeout = Duration::from_secs(args.parsed_or("timeout-secs", 30)?);
    // The census deadline defaults to the per-response timeout (the
    // historical coupling) but is independently tunable: a slow fleet
    // may need minutes to register while responses stay snappy.
    let deadline =
        Duration::from_millis(args.parsed_or("deadline-ms", timeout.as_millis() as u64)?);
    if deadline.is_zero() {
        return Err(CliError::Usage("--deadline-ms must be positive".into()));
    }
    let options = SessionOptions {
        auth_token: args.optional("auth-token").map(str::to_string),
        reconnect_window: Duration::from_millis(args.parsed_or("window-ms", 0)?),
    };
    let cfg = ServeConfig {
        k,
        n,
        seed: rep_seed(seed, 0),
        cost_model,
        protocol: protocol.to_string(),
        // `repr` travels in the Welcome so every player picks the same
        // payload representation the coordinator's referee expects.
        params: format!("eps={eps} d={d} repr={repr}"),
    };
    let coordinator = TcpCoordinator::bind(bind)?;
    let addr = coordinator.local_addr()?;
    // Published after bind, so a poller that sees the file sees the
    // real (possibly ephemeral) port; the guard removes it when this
    // function returns, so no later run can read a stale port.
    let _port_file = args
        .optional("port-file")
        .map(|path| publish_port_file(path, addr))
        .transpose()?;
    let transport = coordinator
        .accept_players_with(&cfg, deadline, &options)?
        .with_timeout(timeout);
    let handle = Arc::new(Mutex::new(transport));
    let tuning = Tuning::practical(eps).with_repr(repr);
    let mut out = String::new();
    let mut last_verdict = String::new();
    for run in 0..runs {
        let shared = SharedRandomness::new(rep_seed(seed, run));
        if run > 0 {
            // Dispatch the next session over the existing registration:
            // re-key every player's shared randomness in place.
            lock(&handle).adopt_shared(SharedRandomness::new(rep_seed(seed, run)));
        }
        let (outcome, fault, stats) = if protocol == "unrestricted" {
            let boxed = Box::new(SharedTransport::new(Arc::clone(&handle)));
            let mut rt: Runtime<Tally> = Runtime::new_with(boxed, n, shared, cost_model);
            let outcome = UnrestrictedTester::new(tuning)
                .with_cost_model(cost_model)
                .run_on(&mut rt);
            let fault = rt.take_fault();
            let stats = rt.stats();
            (outcome, fault, stats)
        } else {
            match collect_and_referee(&handle, protocol, tuning, d, k, n, shared) {
                Ok((outcome, stats)) => (outcome, None, stats),
                Err(e) => (TestOutcome::NoTriangleFound, Some(e), CommStats::default()),
            }
        };
        let verdict = match single_run_verdict(outcome, fault.as_ref()) {
            ChaosOutcome::TriangleFound(t) => format!("triangle {t}"),
            ChaosOutcome::NoTriangleFound => "accepted (no triangle found)".to_string(),
            ChaosOutcome::Inconclusive => {
                let err = fault.as_ref().expect("inconclusive implies a fault");
                format!("inconclusive (quorum lost; {err})")
            }
        };
        let stats_line = format!(
            "{} bits, {} rounds, {} messages, max player message {} bits",
            stats.total_bits, stats.rounds, stats.messages, stats.max_player_sent_bits
        );
        if runs == 1 {
            // Single-run output stays byte-identical to the historical
            // format (and to `triad test --reps 1`'s first two lines).
            out.push_str(&format!("{verdict}\n{stats_line}\n"));
        } else {
            out.push_str(&format!("run {run}: {verdict}\nrun {run}: {stats_line}\n"));
        }
        last_verdict = verdict;
    }
    lock(&handle).goodbye(&last_verdict);
    let roster = if runs == 1 {
        format!("served {k} players on {addr} (protocol {protocol}, seed {seed})\n")
    } else {
        format!(
            "served {k} players on {addr} (protocol {protocol}, seed {seed}, {runs} sessions)\n"
        )
    };
    Ok(out + &roster)
}

/// One simultaneous round over TCP: collect every player's (single)
/// message, then run the referee locally. Charging happens in the same
/// `finish` the in-process paths use, so accounting matches
/// `run_simultaneous_prepared` bit for bit.
fn collect_and_referee(
    handle: &Mutex<TcpTransport>,
    protocol: &str,
    tuning: Tuning,
    d: f64,
    k: usize,
    n: usize,
    shared: SharedRandomness,
) -> Result<(TestOutcome, CommStats), triad_comm::RunError> {
    let messages = lock(handle).collect_sim_messages()?;
    let (output, stats) = match protocol {
        "low" => {
            let p = AlgLow::new(tuning, d);
            let run = run_simultaneous_collected::<_, Tally>(&p, n, messages, shared);
            (run.output, run.stats)
        }
        "high" => {
            let p = AlgHigh::new(tuning, d);
            let run = run_simultaneous_collected::<_, Tally>(&p, n, messages, shared);
            (run.output, run.stats)
        }
        "oblivious" => {
            let p = Oblivious::new(tuning, k);
            let run = run_simultaneous_collected::<_, Tally>(&p, n, messages, shared);
            (run.output, run.stats)
        }
        // `serve` validated the protocol name up front; everything that
        // is not unrestricted or a §3.4 tester is the exact baseline.
        _ => {
            let p = SendEverything::with_repr(tuning.repr);
            let run = run_simultaneous_collected::<_, Tally>(&p, n, messages, shared);
            (run.output, run.stats)
        }
    };
    Ok((TestOutcome::from(output), stats))
}

/// Parses a `--session-file` left by a previous incarnation of this
/// player: one line, `{slot} {nonce}`. Anything unreadable or malformed
/// is treated as no credential (the client registers fresh).
fn read_session_claim(path: &std::path::Path) -> Option<ResumeClaim> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut fields = text.split_whitespace();
    let slot = fields.next()?.parse().ok()?;
    let nonce = fields.next()?.parse().ok()?;
    Some(ResumeClaim {
        slot,
        nonce,
        // A relaunched process has no request log; replay is driven by
        // the coordinator's fresh correlation ids, so 0 is honest.
        last_acked: 0,
    })
}

/// `triad connect` — join a `triad serve` run as one player.
///
/// The Welcome tells this player its slot, the run geometry, the seed,
/// and the protocol; the share file `{--shares}.{player}` is loaded and
/// validated against the advertised vertex count before serving.
///
/// Refused dials are absorbed by a bounded exponential backoff
/// (`--connect-retries`/`--backoff-ms`), so a client racing the
/// daemon's `--port-file` publication no longer dies on a raw
/// `ConnectionRefused`. With `--session-file` the resume credential
/// from the Welcome is persisted, a relaunched process presents it to
/// reclaim its slot inside the daemon's reconnect window, and the file
/// is removed again on a clean farewell.
pub fn connect(args: &ArgMap) -> Result<String, CliError> {
    let addr = args.required("addr")?;
    let prefix = args.required("shares")?;
    let slot = match args.optional("slot") {
        None => None,
        Some(v) => Some(
            v.parse::<u32>()
                .map_err(|e| CliError::Usage(format!("could not parse --slot value `{v}`: {e}")))?,
        ),
    };
    let timeout = Duration::from_secs(args.parsed_or("timeout-secs", 30)?);
    let opts = ConnectOptions {
        slot,
        token: args.optional("auth-token").map(str::to_string),
        timeout,
        retries: args.parsed_or("connect-retries", 5)?,
        backoff: Duration::from_millis(args.parsed_or("backoff-ms", 50)?),
    };
    let session_file = args.optional("session-file").map(PathBuf::from);
    let session = match session_file.as_deref().and_then(read_session_claim) {
        Some(claim) => match PlayerSession::rejoin_with(addr, &opts, claim) {
            Ok(session) => session,
            // A stale credential — the window expired, the daemon
            // restarted, or the slot was reassigned — falls back to a
            // fresh registration rather than giving up.
            Err(NetError::Unauthorized(_) | NetError::WindowExpired(_) | NetError::Protocol(_)) => {
                PlayerSession::connect_with(addr, &opts)?
            }
            Err(e) => return Err(CliError::Net(e)),
        },
        None => PlayerSession::connect_with(addr, &opts)?,
    };
    let w = session.welcome().clone();
    if let Some(path) = &session_file {
        if w.resume_nonce != 0 {
            std::fs::write(path, format!("{} {}\n", w.player, w.resume_nonce))?;
        }
    }
    let path = format!("{prefix}.{}", w.player);
    if !std::path::Path::new(&path).exists() {
        return Err(CliError::Usage(format!(
            "no share file `{path}` for player {} (expected `{prefix}.J` per player)",
            w.player
        )));
    }
    let share = load_graph(&path)?;
    if share.vertex_count() != w.n as usize {
        return Err(CliError::Usage(format!(
            "share `{path}` declares {} vertices but the coordinator serves n={}",
            share.vertex_count(),
            w.n
        )));
    }
    let state = PlayerState::new(w.player as usize, w.n as usize, share.edges());
    let sim = sim_closure(&w)?;
    // `serve_rejoining` degrades to plain `serve` semantics when the
    // Welcome carried no resume nonce (daemon without a window).
    let summary = session
        .serve_rejoining(addr, &opts, &state, sim)
        .map_err(CliError::Net)?;
    let rejoined = match summary.rejoins {
        0 => String::new(),
        r => format!(" (rejoined {r}x)"),
    };
    Ok(match summary.farewell {
        Some(farewell) => {
            // A clean goodbye retires the resume credential: nothing is
            // left to resume, and the next run must not present it.
            if let Some(path) = &session_file {
                let _ = std::fs::remove_file(path);
            }
            format!(
                "player {} served {} requests{rejoined}\ncoordinator verdict: {farewell}\n",
                w.player, summary.requests
            )
        }
        None => format!(
            "player {} served {} requests{rejoined} (connection closed without a farewell)\n",
            w.player, summary.requests
        ),
    })
}

/// The player-side one-round responder `PlayerSession::serve` drives.
type SimResponder = Box<dyn FnMut(&PlayerState, &SharedRandomness) -> SimMessage<'static>>;

/// Builds the player's one-round responder from the Welcome: the same
/// protocol object the coordinator's referee uses, fed the same shared
/// randomness, so the posted message matches the in-process transcript.
fn sim_closure(w: &triad_comm::Welcome) -> Result<SimResponder, CliError> {
    let mut eps = 0.2f64;
    let mut d = 8.0f64;
    let mut repr = PayloadRepr::Auto;
    for tok in w.params.split_whitespace() {
        if let Some((key, val)) = tok.split_once('=') {
            match key {
                "eps" => {
                    eps = val.parse().map_err(|e| {
                        CliError::Usage(format!("bad eps `{val}` in coordinator params: {e}"))
                    })?;
                }
                "d" => {
                    d = val.parse().map_err(|e| {
                        CliError::Usage(format!("bad d `{val}` in coordinator params: {e}"))
                    })?;
                }
                "repr" => {
                    repr = val.parse().map_err(|e| {
                        CliError::Usage(format!("bad repr `{val}` in coordinator params: {e}"))
                    })?;
                }
                _ => {} // Forward compatibility: ignore unknown params.
            }
        }
    }
    let tuning = Tuning::practical(eps).with_repr(repr);
    Ok(match w.protocol.as_str() {
        "low" => {
            let p = AlgLow::new(tuning, d);
            Box::new(move |s, r| p.message(s, r).into_owned())
        }
        "high" => {
            let p = AlgHigh::new(tuning, d);
            Box::new(move |s, r| p.message(s, r).into_owned())
        }
        "oblivious" => {
            let p = Oblivious::new(tuning, w.k as usize);
            Box::new(move |s, r| p.message(s, r).into_owned())
        }
        "exact" => Box::new(move |s, r| SendEverything::with_repr(repr).message(s, r).into_owned()),
        // Interactive protocols never send a SimRequest; an empty
        // message keeps the player well-defined if one arrives anyway.
        "unrestricted" => Box::new(|_, _| SimMessage::empty()),
        other => {
            return Err(CliError::Net(NetError::Protocol(format!(
                "coordinator serves unknown protocol `{other}`"
            ))))
        }
    })
}
