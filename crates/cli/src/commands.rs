//! The CLI commands.

use crate::args::{ArgMap, CliError};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;
use triad_comm::CostModel;
use triad_graph::partition::Partition;
use triad_graph::{distance, generators, io as gio, Graph};
use triad_protocols::{SimProtocolKind, SimultaneousTester, Tuning, UnrestrictedTester};

pub(crate) fn load_graph(path: &str) -> Result<Graph, CliError> {
    Ok(gio::read_edge_list(BufReader::new(File::open(path)?))?)
}

/// `triad gen` — generate a graph and write it as an edge list.
pub fn gen(args: &ArgMap) -> Result<String, CliError> {
    let kind = args.required("kind")?;
    let n: usize = args.required_parsed("n")?;
    let out = args.required("out")?;
    let seed: u64 = args.parsed_or("seed", 0)?;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let graph = match kind {
        "far" => {
            let d: f64 = args.parsed_or("d", 8.0)?;
            let eps: f64 = args.parsed_or("eps", 0.2)?;
            generators::far_graph(n, d, eps, &mut rng)?
        }
        "gnp" => {
            let d: f64 = args.parsed_or("d", 8.0)?;
            generators::gnp_with_average_degree(n, d, &mut rng)
        }
        "dense-core" => {
            let hubs: usize = args.parsed_or("hubs", 4)?;
            generators::dense_core(n, hubs, &mut rng)?.graph().clone()
        }
        "mu" => {
            if !n.is_multiple_of(3) {
                return Err(CliError::Usage("--n must be divisible by 3 for mu".into()));
            }
            let gamma: f64 = args.parsed_or("gamma", 1.2)?;
            let inst = generators::TripartiteMu::new(n / 3, gamma).sample(&mut rng);
            inst.graph().clone()
        }
        "powerlaw" => {
            let d: f64 = args.parsed_or("d", 8.0)?;
            let beta: f64 = args.parsed_or("beta", 2.5)?;
            generators::ChungLu::new(n, d, beta)?.sample(&mut rng)
        }
        "clique-path" => {
            let clique: usize = args.parsed_or("clique", 18)?;
            let mut b = triad_graph::GraphBuilder::new(n);
            for a in 0..clique as u32 {
                for c in (a + 1)..clique as u32 {
                    b.add_edge(triad_graph::Edge::new(
                        triad_graph::VertexId(a),
                        triad_graph::VertexId(c),
                    ));
                }
            }
            for i in clique as u32..(n as u32).saturating_sub(1) {
                b.add_edge(triad_graph::Edge::new(
                    triad_graph::VertexId(i),
                    triad_graph::VertexId(i + 1),
                ));
            }
            b.build()
        }
        other => return Err(CliError::Usage(format!("unknown --kind `{other}`"))),
    };
    gio::write_edge_list(&graph, BufWriter::new(File::create(out)?))?;
    Ok(format!(
        "wrote {out}: n = {}, m = {}, avg degree = {:.2}\n",
        graph.vertex_count(),
        graph.edge_count(),
        graph.average_degree()
    ))
}

/// `triad partition` — split edges among k players, one file per share.
pub fn partition(args: &ArgMap) -> Result<String, CliError> {
    let g = load_graph(args.required("graph")?)?;
    let k: usize = args.required_parsed("k")?;
    if k == 0 {
        return Err(CliError::Usage("--k must be positive".into()));
    }
    let prefix = args.required("out")?;
    let scheme = args.optional("scheme").unwrap_or("random");
    let seed: u64 = args.parsed_or("seed", 0)?;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let parts = match scheme {
        "random" => triad_graph::partition::random_disjoint(&g, k, &mut rng),
        "duplication" => {
            let p: f64 = args.parsed_or("dup-p", 0.3)?;
            triad_graph::partition::with_duplication(&g, k, p, &mut rng)
        }
        "vertex" => triad_graph::partition::by_vertex(&g, k),
        other => return Err(CliError::Usage(format!("unknown --scheme `{other}`"))),
    };
    for (j, share) in parts.shares().iter().enumerate() {
        let path = format!("{prefix}.{j}");
        let share_graph = {
            let mut b = triad_graph::GraphBuilder::new(g.vertex_count());
            b.extend_edges(share.iter().copied());
            b.build()
        };
        gio::write_edge_list(&share_graph, BufWriter::new(File::create(&path)?))?;
    }
    Ok(format!(
        "wrote {k} shares to {prefix}.0..{prefix}.{}: {} edge copies for {} edges\n",
        k - 1,
        parts.total_copies(),
        g.edge_count()
    ))
}

/// `triad info` — statistics and farness certificates.
pub fn info(args: &ArgMap) -> Result<String, CliError> {
    let g = load_graph(args.required("graph")?)?;
    let eps: f64 = args.parsed_or("eps", 0.1)?;
    let bounds = distance::distance_bounds(&g);
    let mut out = String::new();
    out.push_str(&format!("vertices: {}\n", g.vertex_count()));
    out.push_str(&format!("edges: {}\n", g.edge_count()));
    out.push_str(&format!("average degree: {:.3}\n", g.average_degree()));
    out.push_str(&format!("max degree: {}\n", g.max_degree()));
    // Counted with the pool-parallel kernel: identical to the serial
    // count at any `--threads` / `TRIAD_THREADS` setting.
    let triangle_count =
        triad_graph::kernels::count_triangles_par(&g, &triad_comm::pool::Pool::current());
    out.push_str(&format!("triangles: {triangle_count}\n"));
    out.push_str(&format!(
        "distance to triangle-free: {} ≤ removals ≤ {}\n",
        bounds.lower, bounds.upper
    ));
    out.push_str(&format!(
        "certified {eps}-far: {}\n",
        if distance::is_certifiably_far(&g, eps) {
            "yes"
        } else {
            "no"
        }
    ));
    Ok(out)
}

fn load_shares(prefix: &str, n: usize) -> Result<Vec<Vec<triad_graph::Edge>>, CliError> {
    let mut shares = Vec::new();
    loop {
        let path = format!("{prefix}.{}", shares.len());
        if !Path::new(&path).exists() {
            break;
        }
        let g = load_graph(&path)?;
        if g.vertex_count() != n {
            return Err(CliError::Usage(format!(
                "share {path} declares {} vertices, graph has {n}",
                g.vertex_count()
            )));
        }
        shares.push(g.edges().to_vec());
    }
    if shares.is_empty() {
        return Err(CliError::Usage(format!(
            "no share files found at {prefix}.0"
        )));
    }
    Ok(shares)
}

/// `triad count` — one-round approximate triangle counting.
pub fn count(args: &ArgMap) -> Result<String, CliError> {
    let g = load_graph(args.required("graph")?)?;
    let shares = load_shares(args.required("shares")?, g.vertex_count())?;
    let parts = Partition::new(shares);
    let p: f64 = args.parsed_or("p", 0.3)?;
    if !(0.0..=1.0).contains(&p) || p == 0.0 {
        return Err(CliError::Usage("--p must be in (0, 1]".into()));
    }
    let trials: u64 = args.parsed_or("trials", 5)?;
    let seed: u64 = args.parsed_or("seed", 0)?;
    let (estimate, stats) =
        triad_protocols::counting::estimate_triangles_averaged(&g, &parts, p, trials, seed)?;
    Ok(format!(
        "estimated triangles: {estimate:.1} (p = {p}, {trials} trials, {} total bits)\n",
        stats.total_bits
    ))
}

/// `triad hfree` — one-round H-freeness testing.
pub fn hfree(args: &ArgMap) -> Result<String, CliError> {
    let g = load_graph(args.required("graph")?)?;
    let shares = load_shares(args.required("shares")?, g.vertex_count())?;
    let parts = Partition::new(shares);
    let pattern = match args.required("pattern")? {
        "k3" | "triangle" => triad_graph::subgraphs::Pattern::triangle(),
        "k4" => triad_graph::subgraphs::Pattern::clique(4),
        "k5" => triad_graph::subgraphs::Pattern::clique(5),
        "c4" => triad_graph::subgraphs::Pattern::cycle(4),
        "c5" => triad_graph::subgraphs::Pattern::cycle(5),
        other => return Err(CliError::Usage(format!("unknown --pattern `{other}`"))),
    };
    let eps: f64 = args.parsed_or("eps", 0.2)?;
    let seed: u64 = args.parsed_or("seed", 0)?;
    let d: f64 = args.parsed_or("d", g.average_degree())?;
    let run = triad_protocols::subgraphs::run_h_freeness(
        Tuning::practical(eps),
        pattern,
        &g,
        &parts,
        d.max(0.1),
        seed,
    )?;
    let verdict = match run.witness {
        Some(hosts) => format!(
            "copy found at {}",
            hosts
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        ),
        None => "accepted (no copy found)".to_string(),
    };
    Ok(format!(
        "{verdict}\n{} bits, 1 round\n",
        run.stats.total_bits
    ))
}

/// `triad congest` — run the distributed (CONGEST) tester and counter.
pub fn congest(args: &ArgMap) -> Result<String, CliError> {
    let g = load_graph(args.required("graph")?)?;
    let seed: u64 = args.parsed_or("seed", 0)?;
    let max_rounds: usize = args.parsed_or("max-rounds", 200)?;
    let count_iterations: usize = args.parsed_or("count-iterations", 0)?;
    let mut out = String::new();
    let mut net = triad_congest::network::Network::new(&g, seed);
    let res = net.run_until(&triad_congest::triangle::TriangleTester::new(), max_rounds);
    match res.witness {
        Some(t) => out.push_str(&format!(
            "tester: triangle {t} after {} rounds, {} bits (edge cap {} bits/round)\n",
            res.rounds,
            res.total_bits,
            triad_congest::message::Msg::bandwidth_cap(g.vertex_count())
        )),
        None => out.push_str(&format!(
            "tester: accepted after {} rounds, {} bits\n",
            res.rounds, res.total_bits
        )),
    }
    if count_iterations > 0 {
        let est = triad_congest::counting::estimate_triangles(&g, count_iterations, seed);
        out.push_str(&format!(
            "counter: ≈{:.1} triangles ({} iterations, {} bits)\n",
            est.estimate, est.iterations, est.total_bits
        ));
    }
    Ok(out)
}

/// `triad test` — run a protocol over a partitioned input.
pub fn test(args: &ArgMap) -> Result<String, CliError> {
    let g = load_graph(args.required("graph")?)?;
    let shares = load_shares(args.required("shares")?, g.vertex_count())?;
    let parts = Partition::new(shares);
    let protocol = args.required("protocol")?;
    let eps: f64 = args.parsed_or("eps", 0.2)?;
    let seed: u64 = args.parsed_or("seed", 0)?;
    let d: f64 = args.parsed_or("d", g.average_degree())?;
    let cost_model = match args.optional("cost-model").unwrap_or("coordinator") {
        "coordinator" => CostModel::Coordinator,
        "blackboard" => CostModel::Blackboard,
        "message-passing" => CostModel::MessagePassing,
        other => return Err(CliError::Usage(format!("unknown --cost-model `{other}`"))),
    };
    let repr: triad_comm::PayloadRepr = args.parsed_or("payload", Default::default())?;
    let tuning = Tuning::practical(eps).with_repr(repr);
    let breakdown = args
        .optional("breakdown")
        .map(|v| v == "true")
        .unwrap_or(false);
    if breakdown && protocol != "unrestricted" {
        return Err(CliError::Usage(
            "--breakdown is only available for --protocol unrestricted \
             (one-round protocols have a single phase)"
                .into(),
        ));
    }
    if breakdown {
        // Per-phase bit breakdown needs transcript access: drive the
        // runtime directly.
        use triad_comm::{Runtime, SharedRandomness};
        let mut rt = Runtime::local(
            g.vertex_count(),
            parts.shares(),
            SharedRandomness::new(seed),
            cost_model,
        );
        let outcome = UnrestrictedTester::new(tuning)
            .with_cost_model(cost_model)
            .run_on(&mut rt);
        let mut out = String::new();
        out.push_str(&match outcome.triangle() {
            Some(t) => format!("triangle {t}\n"),
            None => "accepted (no triangle found)\n".to_string(),
        });
        for row in rt.transcript().breakdown() {
            out.push_str(&format!(
                "  {:<18} {:>10} bits  {:>8} messages\n",
                row.label, row.bits, row.messages
            ));
        }
        out.push_str(&format!(
            "  {:<18} {:>10} bits total\n",
            "=",
            rt.stats().total_bits
        ));
        return Ok(out);
    }
    let reps: u32 = args.parsed_or("reps", 1)?;
    if reps == 0 {
        return Err(CliError::Usage("--reps must be positive".into()));
    }
    let record = args.optional("record").unwrap_or("tally");
    if record != "tally" && record != "full" {
        return Err(CliError::Usage(format!(
            "unknown --record `{record}` (expected tally or full)"
        )));
    }
    // With --reps > 1 the run is amplified: repetitions execute on the
    // configured worker pool (--threads), first witness wins, and cost
    // covers exactly the repetitions a serial loop would have performed.
    // `--record tally` (the default) skips the per-event log; totals and
    // verdicts are identical either way (see docs/RUNTIME.md).
    let amp = |t: &(dyn triad_protocols::amplify::Repeatable + Sync)| {
        if record == "tally" {
            triad_protocols::amplify::run_amplified_tally(&t, &g, &parts, reps, seed)
                .map(|r| (r.outcome, r.stats))
        } else {
            triad_protocols::amplify::run_amplified(&t, &g, &parts, reps, seed)
                .map(|r| (r.outcome, r.stats))
        }
    };
    let (outcome, stats) = match protocol {
        "unrestricted" => amp(&UnrestrictedTester::new(tuning).with_cost_model(cost_model))?,
        "low" => amp(&SimultaneousTester::new(
            tuning,
            SimProtocolKind::Low { avg_degree: d },
        ))?,
        "high" => amp(&SimultaneousTester::new(
            tuning,
            SimProtocolKind::High { avg_degree: d },
        ))?,
        "oblivious" => amp(&SimultaneousTester::new(tuning, SimProtocolKind::Oblivious))?,
        "exact" => amp(&triad_protocols::baseline::SendEverything::with_repr(repr))?,
        other => return Err(CliError::Usage(format!("unknown --protocol `{other}`"))),
    };
    let verdict = match outcome.triangle() {
        Some(t) => format!("triangle {t}"),
        None => "accepted (no triangle found)".to_string(),
    };
    Ok(format!(
        "{verdict}\n{} bits, {} rounds, {} messages, max player message {} bits\n",
        stats.total_bits, stats.rounds, stats.messages, stats.max_player_sent_bits
    ))
}

/// `triad chaos` — run a protocol's amplified sweep under a
/// deterministic fault-injection plan and report the quorum-gated
/// verdict with per-kind failure, injection and retransmission
/// accounting. The fault model is documented in `docs/FAULTS.md`.
pub fn chaos(args: &ArgMap) -> Result<String, CliError> {
    use triad_protocols::{run_chaos_amplified_tally, ChaosOutcome};
    let g = load_graph(args.required("graph")?)?;
    let shares = load_shares(args.required("shares")?, g.vertex_count())?;
    let parts = Partition::new(shares);
    let protocol = args.required("protocol")?;
    let eps: f64 = args.parsed_or("eps", 0.2)?;
    let seed: u64 = args.parsed_or("seed", 0)?;
    let d: f64 = args.parsed_or("d", g.average_degree())?;
    let reps: u32 = args.parsed_or("reps", 8)?;
    if reps == 0 {
        return Err(CliError::Usage("--reps must be positive".into()));
    }
    let rate: f64 = args.parsed_or("rate", 0.1)?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(CliError::Usage("--rate must be in [0, 1]".into()));
    }
    let quorum: f64 = args.parsed_or("quorum", triad_protocols::DEFAULT_QUORUM)?;
    if !(0.0..=1.0).contains(&quorum) {
        return Err(CliError::Usage("--quorum must be in [0, 1]".into()));
    }
    let fault_seed: u64 = args.parsed_or("fault-seed", seed)?;
    let rates = match args.optional("faults").unwrap_or("mixed") {
        "omission" => triad_comm::FaultRates::omission(rate),
        "mixed" => triad_comm::FaultRates::mixed(rate),
        other => {
            return Err(CliError::Usage(format!(
                "unknown --faults `{other}` (expected omission or mixed)"
            )))
        }
    };
    let plan = triad_comm::FaultPlan::new(fault_seed, rates);
    let repr: triad_comm::PayloadRepr = args.parsed_or("payload", Default::default())?;
    let tuning = Tuning::practical(eps).with_repr(repr);
    let run = match protocol {
        "unrestricted" => run_chaos_amplified_tally(
            &UnrestrictedTester::new(tuning),
            &g,
            &parts,
            reps,
            seed,
            &plan,
            quorum,
        )?,
        "low" => run_chaos_amplified_tally(
            &SimultaneousTester::new(tuning, SimProtocolKind::Low { avg_degree: d }),
            &g,
            &parts,
            reps,
            seed,
            &plan,
            quorum,
        )?,
        "high" => run_chaos_amplified_tally(
            &SimultaneousTester::new(tuning, SimProtocolKind::High { avg_degree: d }),
            &g,
            &parts,
            reps,
            seed,
            &plan,
            quorum,
        )?,
        "oblivious" => run_chaos_amplified_tally(
            &SimultaneousTester::new(tuning, SimProtocolKind::Oblivious),
            &g,
            &parts,
            reps,
            seed,
            &plan,
            quorum,
        )?,
        "exact" => run_chaos_amplified_tally(
            &triad_protocols::baseline::SendEverything::with_repr(repr),
            &g,
            &parts,
            reps,
            seed,
            &plan,
            quorum,
        )?,
        other => return Err(CliError::Usage(format!("unknown --protocol `{other}`"))),
    };
    let verdict = match run.outcome {
        ChaosOutcome::TriangleFound(t) => format!("triangle {t}"),
        ChaosOutcome::NoTriangleFound => "accepted (quorum met, no triangle found)".to_string(),
        ChaosOutcome::Inconclusive => {
            "inconclusive (quorum lost; not enough surviving repetitions to accept)".to_string()
        }
    };
    let f = run.failures;
    let i = run.injected;
    Ok(format!(
        "{verdict}\n\
         survived {}/{} repetitions (quorum needs {})\n\
         failures: {} (transport {}, timeout {}, corrupt {}, aborted {})\n\
         injected: {} faults (drops {}, corruptions {}, duplicates {}, delays {}, crashes {})\n\
         {} bits total, {} bits retransmitted\n",
        run.survived,
        run.attempted,
        run.needed,
        f.total(),
        f.transport,
        f.timeout,
        f.corrupt,
        f.aborted,
        i.total(),
        i.drops,
        i.corruptions,
        i.duplicates,
        i.delays,
        i.crashes,
        run.stats.total_bits,
        run.retransmit_bits(),
    ))
}

/// `triad report` — generate an input, run a protocol, and emit a
/// structured cost report (text or JSON) with per-phase and per-player
/// breakdowns plus the paper's predicted bound. The schema is documented
/// in `docs/OBSERVABILITY.md`.
pub fn report(args: &ArgMap) -> Result<String, CliError> {
    use triad_bench::report as engine;
    match args.optional("record").unwrap_or("full") {
        "full" => {}
        "tally" => {
            return Err(CliError::Usage(
                "`triad report` needs the per-event transcript for its per-phase \
                 and per-player breakdowns, but `--record tally` keeps only \
                 counters; re-run with `--record full` (the default)"
                    .into(),
            ))
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown --record `{other}` (expected tally or full)"
            )))
        }
    }
    let protocol = args.required("protocol")?;
    let generator = args.required("gen")?;
    let n: usize = args.required_parsed("n")?;
    let k: usize = args.required_parsed("k")?;
    let d: f64 = args.parsed_or("d", 8.0)?;
    let eps: f64 = args.parsed_or("eps", 0.2)?;
    let seed: u64 = args.parsed_or("seed", 0)?;
    let w = engine::generate(generator, n, d, eps, k, seed)
        .map_err(|e| CliError::Usage(e.to_string()))?;
    let run = engine::run_protocol(protocol, &w, eps, seed).map_err(|e| match e {
        engine::ReportError::Protocol(p) => CliError::Protocol(p),
        other => CliError::Usage(other.to_string()),
    })?;
    let cost = engine::report_for_run(
        triad_comm::ReportParams {
            protocol: protocol.to_string(),
            generator: generator.to_string(),
            n,
            k,
            d: w.d,
            eps,
            seed,
        },
        &run,
        &run.transcript,
    );
    if let Some(path) = args.optional("transcript") {
        run.transcript
            .write_events_json(BufWriter::new(File::create(path)?))?;
    }
    let rendered = if args.flag("json") {
        format!("{}\n", cost.to_json())
    } else {
        cost.to_text()
    };
    if let Some(path) = args.optional("out") {
        use std::io::Write;
        File::create(path)?.write_all(rendered.as_bytes())?;
        return Ok(format!("wrote {path}\n"));
    }
    Ok(rendered)
}

/// `triad bench --sessions N [--quick]` — the scheduler saturation
/// microbench: drive one batch of `N` sessions over worker pools of
/// 1, 2, 4 and 8 threads and print the measured queries/sec at each,
/// asserting along the way that every worker count produced identical
/// results (see `docs/RUNTIME.md`, "Sessions and scheduling").
pub fn bench(args: &ArgMap) -> Result<String, CliError> {
    let sessions: usize = args.required_parsed("sessions")?;
    if sessions == 0 {
        return Err(CliError::Usage(
            "--sessions needs a positive integer".into(),
        ));
    }
    let scale = if args.flag("quick") {
        triad_bench::experiments::Scale::Quick
    } else {
        triad_bench::experiments::Scale::Full
    };
    let s = triad_bench::sessions::session_saturation(scale, sessions);
    let mut out = format!(
        "scheduler saturation: {} sessions x {} reps over {} distinct inputs \
         (n={}, m={}, k={})\n",
        s.sessions, s.reps, s.distinct_inputs, s.vertices, s.edges, s.players
    );
    for (w, qps) in triad_bench::sessions::SESSION_WORKER_COUNTS
        .iter()
        .zip(s.qps)
    {
        out.push_str(&format!("  {w} worker(s): {qps:>10.1} queries/sec\n"));
    }
    out.push_str(&format!(
        "cache: {} hits, {} builds; saturation speedup (8w/1w): {:.2}x\n",
        s.cache_hits,
        s.distinct_inputs,
        s.saturation_speedup()
    ));
    Ok(out)
}
