//! The CLI commands.

use crate::args::{ArgMap, CliError};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;
use triad_comm::CostModel;
use triad_graph::partition::Partition;
use triad_graph::store::{
    write_csr, ChungLuStream, DenseCoreStream, EdgeStream, FarStream, GnpStream,
};
use triad_graph::{distance, generators, io as gio, AsCsr, CsrStore, Graph};
use triad_protocols::amplify::{PreparedInput, Repeatable};
use triad_protocols::{SimProtocolKind, SimultaneousTester, Tuning, UnrestrictedTester};

pub(crate) fn load_graph(path: &str) -> Result<Graph, CliError> {
    Ok(gio::read_edge_list(BufReader::new(File::open(path)?))?)
}

/// The tester behind a `--protocol` name. `cost_model` only affects
/// `unrestricted` (the one multi-round protocol); the default
/// [`CostModel::Coordinator`] matches the tester's own default.
fn tester_for(
    protocol: &str,
    tuning: Tuning,
    d: f64,
    cost_model: CostModel,
    repr: triad_comm::PayloadRepr,
) -> Result<Box<dyn Repeatable + Sync>, CliError> {
    Ok(match protocol {
        "unrestricted" => Box::new(UnrestrictedTester::new(tuning).with_cost_model(cost_model)),
        "low" => Box::new(SimultaneousTester::new(
            tuning,
            SimProtocolKind::Low { avg_degree: d },
        )),
        "high" => Box::new(SimultaneousTester::new(
            tuning,
            SimProtocolKind::High { avg_degree: d },
        )),
        "oblivious" => Box::new(SimultaneousTester::new(tuning, SimProtocolKind::Oblivious)),
        "exact" => Box::new(triad_protocols::baseline::SendEverything::with_repr(repr)),
        other => return Err(CliError::Usage(format!("unknown --protocol `{other}`"))),
    })
}

/// Partitions the edges of any CSR backing among `k` players, in-memory,
/// from `--scheme` / `--partition-seed` — how `--graph-file` runs get
/// their shares without share files on disk.
fn partition_for<G: AsCsr + ?Sized>(args: &ArgMap, g: &G) -> Result<Partition, CliError> {
    let k: usize = args.required_parsed("k")?;
    if k == 0 {
        return Err(CliError::Usage("--k must be positive".into()));
    }
    let seed: u64 = args.parsed_or("partition-seed", 0)?;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    Ok(match args.optional("scheme").unwrap_or("random") {
        "random" => triad_graph::partition::random_disjoint(g, k, &mut rng),
        "duplication" => {
            let p: f64 = args.parsed_or("dup-p", 0.3)?;
            triad_graph::partition::with_duplication(g, k, p, &mut rng)
        }
        "vertex" => triad_graph::partition::by_vertex(g, k),
        other => return Err(CliError::Usage(format!("unknown --scheme `{other}`"))),
    })
}

/// `triad gen` — generate a graph and write it as a text edge list
/// (`--format edges`, the default) or stream it into the binary CSR
/// container of `docs/IO.md` (`--format csr`). The CSR path never
/// materializes the edge list for the `far`, `gnp`, `powerlaw` and
/// `dense-core` families: edges are replayed chunk-by-chunk through the
/// windowed writer, so peak memory is `O(n + window)` regardless of `m`.
pub fn gen(args: &ArgMap) -> Result<String, CliError> {
    let kind = args.required("kind")?;
    let n: usize = args.required_parsed("n")?;
    let out = args.required("out")?;
    let seed: u64 = args.parsed_or("seed", 0)?;
    let format = args.optional("format").unwrap_or("edges");
    if format == "csr" {
        let stream: Box<dyn EdgeStream> = match kind {
            "gnp" => {
                let d: f64 = args.parsed_or("d", 8.0)?;
                Box::new(GnpStream::with_average_degree(n, d, seed)?)
            }
            "far" => {
                let d: f64 = args.parsed_or("d", 8.0)?;
                let eps: f64 = args.parsed_or("eps", 0.2)?;
                Box::new(FarStream::new(n, d, eps, seed)?)
            }
            "powerlaw" => {
                let d: f64 = args.parsed_or("d", 8.0)?;
                let beta: f64 = args.parsed_or("beta", 2.5)?;
                Box::new(ChungLuStream::new(n, d, beta, seed)?)
            }
            "dense-core" => {
                let hubs: usize = args.parsed_or("hubs", 4)?;
                Box::new(DenseCoreStream::new(n, hubs, seed)?)
            }
            // The remaining families have no streaming generator;
            // materialize once and replay the Graph (still one pass
            // over the writer, just not memory-bounded).
            "mu" | "clique-path" => Box::new(gen_graph(args, kind, n, seed)?),
            other => return Err(CliError::Usage(format!("unknown --kind `{other}`"))),
        };
        let summary = write_csr(Path::new(out), stream.as_ref())?;
        return Ok(format!(
            "wrote {out}: n = {}, m = {}, {} bytes in {} window(s) (binary CSR, docs/IO.md)\n",
            summary.vertices, summary.edges, summary.file_bytes, summary.windows
        ));
    }
    if format != "edges" {
        return Err(CliError::Usage(format!(
            "unknown --format `{format}` (expected edges or csr)"
        )));
    }
    let graph = gen_graph(args, kind, n, seed)?;
    gio::write_edge_list(&graph, BufWriter::new(File::create(out)?))?;
    Ok(format!(
        "wrote {out}: n = {}, m = {}, avg degree = {:.2}\n",
        graph.vertex_count(),
        graph.edge_count(),
        graph.average_degree()
    ))
}

/// The in-memory generator behind `triad gen` — shared by the edge-list
/// path and the CSR fallback for families without a streaming form.
fn gen_graph(args: &ArgMap, kind: &str, n: usize, seed: u64) -> Result<Graph, CliError> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let graph = match kind {
        "far" => {
            let d: f64 = args.parsed_or("d", 8.0)?;
            let eps: f64 = args.parsed_or("eps", 0.2)?;
            generators::far_graph(n, d, eps, &mut rng)?
        }
        "gnp" => {
            let d: f64 = args.parsed_or("d", 8.0)?;
            generators::gnp_with_average_degree(n, d, &mut rng)
        }
        "dense-core" => {
            let hubs: usize = args.parsed_or("hubs", 4)?;
            generators::dense_core(n, hubs, &mut rng)?.graph().clone()
        }
        "mu" => {
            if !n.is_multiple_of(3) {
                return Err(CliError::Usage("--n must be divisible by 3 for mu".into()));
            }
            let gamma: f64 = args.parsed_or("gamma", 1.2)?;
            let inst = generators::TripartiteMu::new(n / 3, gamma).sample(&mut rng);
            inst.graph().clone()
        }
        "powerlaw" => {
            let d: f64 = args.parsed_or("d", 8.0)?;
            let beta: f64 = args.parsed_or("beta", 2.5)?;
            generators::ChungLu::new(n, d, beta)?.sample(&mut rng)
        }
        "clique-path" => {
            let clique: usize = args.parsed_or("clique", 18)?;
            let mut b = triad_graph::GraphBuilder::new(n);
            for a in 0..clique as u32 {
                for c in (a + 1)..clique as u32 {
                    b.add_edge(triad_graph::Edge::new(
                        triad_graph::VertexId(a),
                        triad_graph::VertexId(c),
                    ));
                }
            }
            for i in clique as u32..(n as u32).saturating_sub(1) {
                b.add_edge(triad_graph::Edge::new(
                    triad_graph::VertexId(i),
                    triad_graph::VertexId(i + 1),
                ));
            }
            b.build()
        }
        other => return Err(CliError::Usage(format!("unknown --kind `{other}`"))),
    };
    Ok(graph)
}

/// `triad partition` — split edges among k players, one file per share.
pub fn partition(args: &ArgMap) -> Result<String, CliError> {
    let g = load_graph(args.required("graph")?)?;
    let k: usize = args.required_parsed("k")?;
    if k == 0 {
        return Err(CliError::Usage("--k must be positive".into()));
    }
    let prefix = args.required("out")?;
    let scheme = args.optional("scheme").unwrap_or("random");
    let seed: u64 = args.parsed_or("seed", 0)?;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let parts = match scheme {
        "random" => triad_graph::partition::random_disjoint(&g, k, &mut rng),
        "duplication" => {
            let p: f64 = args.parsed_or("dup-p", 0.3)?;
            triad_graph::partition::with_duplication(&g, k, p, &mut rng)
        }
        "vertex" => triad_graph::partition::by_vertex(&g, k),
        other => return Err(CliError::Usage(format!("unknown --scheme `{other}`"))),
    };
    for (j, share) in parts.shares().iter().enumerate() {
        let path = format!("{prefix}.{j}");
        let share_graph = {
            let mut b = triad_graph::GraphBuilder::new(g.vertex_count());
            b.extend_edges(share.iter().copied());
            b.build()
        };
        gio::write_edge_list(&share_graph, BufWriter::new(File::create(&path)?))?;
    }
    Ok(format!(
        "wrote {k} shares to {prefix}.0..{prefix}.{}: {} edge copies for {} edges\n",
        k - 1,
        parts.total_copies(),
        g.edge_count()
    ))
}

/// `triad info` — statistics and farness certificates.
pub fn info(args: &ArgMap) -> Result<String, CliError> {
    let g = load_graph(args.required("graph")?)?;
    let eps: f64 = args.parsed_or("eps", 0.1)?;
    let bounds = distance::distance_bounds(&g);
    let mut out = String::new();
    out.push_str(&format!("vertices: {}\n", g.vertex_count()));
    out.push_str(&format!("edges: {}\n", g.edge_count()));
    out.push_str(&format!("average degree: {:.3}\n", g.average_degree()));
    out.push_str(&format!("max degree: {}\n", g.max_degree()));
    // Counted with the pool-parallel kernel: identical to the serial
    // count at any `--threads` / `TRIAD_THREADS` setting.
    let triangle_count =
        triad_graph::kernels::count_triangles_par(&g, &triad_comm::pool::Pool::current());
    out.push_str(&format!("triangles: {triangle_count}\n"));
    out.push_str(&format!(
        "distance to triangle-free: {} ≤ removals ≤ {}\n",
        bounds.lower, bounds.upper
    ));
    out.push_str(&format!(
        "certified {eps}-far: {}\n",
        if distance::is_certifiably_far(&g, eps) {
            "yes"
        } else {
            "no"
        }
    ));
    Ok(out)
}

fn load_shares(prefix: &str, n: usize) -> Result<Vec<Vec<triad_graph::Edge>>, CliError> {
    let mut shares = Vec::new();
    loop {
        let path = format!("{prefix}.{}", shares.len());
        if !Path::new(&path).exists() {
            break;
        }
        let g = load_graph(&path)?;
        if g.vertex_count() != n {
            return Err(CliError::Usage(format!(
                "share {path} declares {} vertices, graph has {n}",
                g.vertex_count()
            )));
        }
        shares.push(g.edges().to_vec());
    }
    if shares.is_empty() {
        return Err(CliError::Usage(format!(
            "no share files found at {prefix}.0"
        )));
    }
    Ok(shares)
}

/// `triad count` — one-round approximate triangle counting.
pub fn count(args: &ArgMap) -> Result<String, CliError> {
    let g = load_graph(args.required("graph")?)?;
    let shares = load_shares(args.required("shares")?, g.vertex_count())?;
    let parts = Partition::new(shares);
    let p: f64 = args.parsed_or("p", 0.3)?;
    if !(0.0..=1.0).contains(&p) || p == 0.0 {
        return Err(CliError::Usage("--p must be in (0, 1]".into()));
    }
    let trials: u64 = args.parsed_or("trials", 5)?;
    let seed: u64 = args.parsed_or("seed", 0)?;
    let (estimate, stats) =
        triad_protocols::counting::estimate_triangles_averaged(&g, &parts, p, trials, seed)?;
    Ok(format!(
        "estimated triangles: {estimate:.1} (p = {p}, {trials} trials, {} total bits)\n",
        stats.total_bits
    ))
}

/// `triad hfree` — one-round H-freeness testing.
pub fn hfree(args: &ArgMap) -> Result<String, CliError> {
    let g = load_graph(args.required("graph")?)?;
    let shares = load_shares(args.required("shares")?, g.vertex_count())?;
    let parts = Partition::new(shares);
    let pattern = match args.required("pattern")? {
        "k3" | "triangle" => triad_graph::subgraphs::Pattern::triangle(),
        "k4" => triad_graph::subgraphs::Pattern::clique(4),
        "k5" => triad_graph::subgraphs::Pattern::clique(5),
        "c4" => triad_graph::subgraphs::Pattern::cycle(4),
        "c5" => triad_graph::subgraphs::Pattern::cycle(5),
        other => return Err(CliError::Usage(format!("unknown --pattern `{other}`"))),
    };
    let eps: f64 = args.parsed_or("eps", 0.2)?;
    let seed: u64 = args.parsed_or("seed", 0)?;
    let d: f64 = args.parsed_or("d", g.average_degree())?;
    let run = triad_protocols::subgraphs::run_h_freeness(
        Tuning::practical(eps),
        pattern,
        &g,
        &parts,
        d.max(0.1),
        seed,
    )?;
    let verdict = match run.witness {
        Some(hosts) => format!(
            "copy found at {}",
            hosts
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        ),
        None => "accepted (no copy found)".to_string(),
    };
    Ok(format!(
        "{verdict}\n{} bits, 1 round\n",
        run.stats.total_bits
    ))
}

/// `triad congest` — run the distributed (CONGEST) tester and counter.
pub fn congest(args: &ArgMap) -> Result<String, CliError> {
    let g = load_graph(args.required("graph")?)?;
    let seed: u64 = args.parsed_or("seed", 0)?;
    let max_rounds: usize = args.parsed_or("max-rounds", 200)?;
    let count_iterations: usize = args.parsed_or("count-iterations", 0)?;
    let mut out = String::new();
    let mut net = triad_congest::network::Network::new(&g, seed);
    let res = net.run_until(&triad_congest::triangle::TriangleTester::new(), max_rounds);
    match res.witness {
        Some(t) => out.push_str(&format!(
            "tester: triangle {t} after {} rounds, {} bits (edge cap {} bits/round)\n",
            res.rounds,
            res.total_bits,
            triad_congest::message::Msg::bandwidth_cap(g.vertex_count())
        )),
        None => out.push_str(&format!(
            "tester: accepted after {} rounds, {} bits\n",
            res.rounds, res.total_bits
        )),
    }
    if count_iterations > 0 {
        let est = triad_congest::counting::estimate_triangles(&g, count_iterations, seed);
        out.push_str(&format!(
            "counter: ≈{:.1} triangles ({} iterations, {} bits)\n",
            est.estimate, est.iterations, est.total_bits
        ));
    }
    Ok(out)
}

/// `triad test` — run a protocol over a partitioned input. The input is
/// either a text edge list plus share files (`--graph --shares`) or a
/// binary CSR container partitioned in-process (`--graph-file --k`);
/// the protocol execution and the output format are identical.
pub fn test(args: &ArgMap) -> Result<String, CliError> {
    let protocol = args.required("protocol")?;
    let eps: f64 = args.parsed_or("eps", 0.2)?;
    let seed: u64 = args.parsed_or("seed", 0)?;
    let cost_model = match args.optional("cost-model").unwrap_or("coordinator") {
        "coordinator" => CostModel::Coordinator,
        "blackboard" => CostModel::Blackboard,
        "message-passing" => CostModel::MessagePassing,
        other => return Err(CliError::Usage(format!("unknown --cost-model `{other}`"))),
    };
    let repr: triad_comm::PayloadRepr = args.parsed_or("payload", Default::default())?;
    let tuning = Tuning::practical(eps).with_repr(repr);
    if let Some(path) = args.optional("graph-file") {
        return test_store(args, path, protocol, tuning, cost_model, repr, seed);
    }
    let g = load_graph(args.required("graph")?)?;
    let shares = load_shares(args.required("shares")?, g.vertex_count())?;
    let parts = Partition::new(shares);
    let d: f64 = args.parsed_or("d", g.average_degree())?;
    let breakdown = args
        .optional("breakdown")
        .map(|v| v == "true")
        .unwrap_or(false);
    if breakdown && protocol != "unrestricted" {
        return Err(CliError::Usage(
            "--breakdown is only available for --protocol unrestricted \
             (one-round protocols have a single phase)"
                .into(),
        ));
    }
    if breakdown {
        // Per-phase bit breakdown needs transcript access: drive the
        // runtime directly.
        use triad_comm::{Runtime, SharedRandomness};
        let mut rt = Runtime::local(
            g.vertex_count(),
            parts.shares(),
            SharedRandomness::new(seed),
            cost_model,
        );
        let outcome = UnrestrictedTester::new(tuning)
            .with_cost_model(cost_model)
            .run_on(&mut rt);
        let mut out = String::new();
        out.push_str(&match outcome.triangle() {
            Some(t) => format!("triangle {t}\n"),
            None => "accepted (no triangle found)\n".to_string(),
        });
        for row in rt.transcript().breakdown() {
            out.push_str(&format!(
                "  {:<18} {:>10} bits  {:>8} messages\n",
                row.label, row.bits, row.messages
            ));
        }
        out.push_str(&format!(
            "  {:<18} {:>10} bits total\n",
            "=",
            rt.stats().total_bits
        ));
        return Ok(out);
    }
    let reps: u32 = args.parsed_or("reps", 1)?;
    if reps == 0 {
        return Err(CliError::Usage("--reps must be positive".into()));
    }
    let record = args.optional("record").unwrap_or("tally");
    if record != "tally" && record != "full" {
        return Err(CliError::Usage(format!(
            "unknown --record `{record}` (expected tally or full)"
        )));
    }
    // With --reps > 1 the run is amplified: repetitions execute on the
    // configured worker pool (--threads), first witness wins, and cost
    // covers exactly the repetitions a serial loop would have performed.
    // `--record tally` (the default) skips the per-event log; totals and
    // verdicts are identical either way (see docs/RUNTIME.md).
    let tester = tester_for(protocol, tuning, d, cost_model, repr)?;
    let (outcome, stats) = if record == "tally" {
        triad_protocols::amplify::run_amplified_tally(&&*tester, &g, &parts, reps, seed)
            .map(|r| (r.outcome, r.stats))?
    } else {
        triad_protocols::amplify::run_amplified(&&*tester, &g, &parts, reps, seed)
            .map(|r| (r.outcome, r.stats))?
    };
    Ok(render_test_run(&outcome, &stats))
}

/// The `--graph-file` arm of `triad test`: open the binary CSR store
/// (mapped when the platform allows, buffered otherwise), partition its
/// edges in-process, and run the protocol graph-free over a
/// [`PreparedInput::from_partition`] — no [`Graph`] is ever built, so
/// the resident cost is the shares plus whatever pages the kernel keeps
/// warm.
fn test_store(
    args: &ArgMap,
    path: &str,
    protocol: &str,
    tuning: Tuning,
    cost_model: CostModel,
    repr: triad_comm::PayloadRepr,
    seed: u64,
) -> Result<String, CliError> {
    if args.flag("breakdown") {
        return Err(CliError::Usage(
            "--breakdown needs the in-memory runtime; use --graph/--shares, not --graph-file"
                .into(),
        ));
    }
    match args.optional("record").unwrap_or("tally") {
        "tally" => {}
        "full" => {
            return Err(CliError::Usage(
                "--record full replays repetitions over a materialized graph; \
                 --graph-file runs keep only tallies (use --graph/--shares for \
                 full transcripts)"
                    .into(),
            ))
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown --record `{other}` (expected tally or full)"
            )))
        }
    }
    let reps: u32 = args.parsed_or("reps", 1)?;
    if reps == 0 {
        return Err(CliError::Usage("--reps must be positive".into()));
    }
    let store = CsrStore::open(Path::new(path))?;
    let d: f64 = args.parsed_or("d", store.average_degree())?;
    let parts = partition_for(args, &store)?;
    let input = PreparedInput::from_partition(store.vertex_count(), &parts)?;
    let tester = tester_for(protocol, tuning, d, cost_model, repr)?;
    let run = triad_protocols::amplify::run_amplified_prepared(
        &triad_comm::pool::Pool::current(),
        &&*tester,
        &input,
        reps,
        seed,
    )?;
    Ok(render_test_run(&run.outcome, &run.stats))
}

fn render_test_run(
    outcome: &triad_protocols::TestOutcome,
    stats: &triad_comm::CommStats,
) -> String {
    let verdict = match outcome.triangle() {
        Some(t) => format!("triangle {t}"),
        None => "accepted (no triangle found)".to_string(),
    };
    format!(
        "{verdict}\n{} bits, {} rounds, {} messages, max player message {} bits\n",
        stats.total_bits, stats.rounds, stats.messages, stats.max_player_sent_bits
    )
}

/// `triad chaos` — run a protocol's amplified sweep under a
/// deterministic fault-injection plan and report the quorum-gated
/// verdict with per-kind failure, injection and retransmission
/// accounting. The fault model is documented in `docs/FAULTS.md`.
pub fn chaos(args: &ArgMap) -> Result<String, CliError> {
    use triad_protocols::ChaosOutcome;
    let protocol = args.required("protocol")?;
    let eps: f64 = args.parsed_or("eps", 0.2)?;
    let seed: u64 = args.parsed_or("seed", 0)?;
    let reps: u32 = args.parsed_or("reps", 8)?;
    if reps == 0 {
        return Err(CliError::Usage("--reps must be positive".into()));
    }
    let rate: f64 = args.parsed_or("rate", 0.1)?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(CliError::Usage("--rate must be in [0, 1]".into()));
    }
    let quorum: f64 = args.parsed_or("quorum", triad_protocols::DEFAULT_QUORUM)?;
    if !(0.0..=1.0).contains(&quorum) {
        return Err(CliError::Usage("--quorum must be in [0, 1]".into()));
    }
    let fault_seed: u64 = args.parsed_or("fault-seed", seed)?;
    let rates = match args.optional("faults").unwrap_or("mixed") {
        "omission" => triad_comm::FaultRates::omission(rate),
        "mixed" => triad_comm::FaultRates::mixed(rate),
        other => {
            return Err(CliError::Usage(format!(
                "unknown --faults `{other}` (expected omission or mixed)"
            )))
        }
    };
    let plan = triad_comm::FaultPlan::new(fault_seed, rates);
    let repr: triad_comm::PayloadRepr = args.parsed_or("payload", Default::default())?;
    let tuning = Tuning::practical(eps).with_repr(repr);
    // `chaos` has no --cost-model flag; CostModel::Coordinator is the
    // unrestricted tester's own default, so tester_for changes nothing.
    let run = if let Some(path) = args.optional("graph-file") {
        let store = CsrStore::open(Path::new(path))?;
        let d: f64 = args.parsed_or("d", store.average_degree())?;
        let parts = partition_for(args, &store)?;
        let input = PreparedInput::from_partition(store.vertex_count(), &parts)?;
        let tester = tester_for(protocol, tuning, d, CostModel::Coordinator, repr)?;
        triad_protocols::run_chaos_amplified(
            &triad_comm::pool::Pool::current(),
            &&*tester,
            &input,
            reps,
            seed,
            &plan,
            quorum,
        )
    } else {
        let g = load_graph(args.required("graph")?)?;
        let shares = load_shares(args.required("shares")?, g.vertex_count())?;
        let parts = Partition::new(shares);
        let d: f64 = args.parsed_or("d", g.average_degree())?;
        let tester = tester_for(protocol, tuning, d, CostModel::Coordinator, repr)?;
        triad_protocols::run_chaos_amplified_tally(
            &&*tester, &g, &parts, reps, seed, &plan, quorum,
        )?
    };
    let verdict = match run.outcome {
        ChaosOutcome::TriangleFound(t) => format!("triangle {t}"),
        ChaosOutcome::NoTriangleFound => "accepted (quorum met, no triangle found)".to_string(),
        ChaosOutcome::Inconclusive => {
            "inconclusive (quorum lost; not enough surviving repetitions to accept)".to_string()
        }
    };
    let f = run.failures;
    let i = run.injected;
    Ok(format!(
        "{verdict}\n\
         survived {}/{} repetitions (quorum needs {})\n\
         failures: {} (transport {}, timeout {}, corrupt {}, aborted {})\n\
         injected: {} faults (drops {}, corruptions {}, duplicates {}, delays {}, crashes {})\n\
         {} bits total, {} bits retransmitted\n",
        run.survived,
        run.attempted,
        run.needed,
        f.total(),
        f.transport,
        f.timeout,
        f.corrupt,
        f.aborted,
        i.total(),
        i.drops,
        i.corruptions,
        i.duplicates,
        i.delays,
        i.crashes,
        run.stats.total_bits,
        run.retransmit_bits(),
    ))
}

/// `triad report` — generate an input, run a protocol, and emit a
/// structured cost report (text or JSON) with per-phase and per-player
/// breakdowns plus the paper's predicted bound. The schema is documented
/// in `docs/OBSERVABILITY.md`.
pub fn report(args: &ArgMap) -> Result<String, CliError> {
    use triad_bench::report as engine;
    match args.optional("record").unwrap_or("full") {
        "full" => {}
        "tally" => {
            return Err(CliError::Usage(
                "`triad report` needs the per-event transcript for its per-phase \
                 and per-player breakdowns, but `--record tally` keeps only \
                 counters; re-run with `--record full` (the default)"
                    .into(),
            ))
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown --record `{other}` (expected tally or full)"
            )))
        }
    }
    let protocol = args.required("protocol")?;
    let generator = args.required("gen")?;
    let n: usize = args.required_parsed("n")?;
    let k: usize = args.required_parsed("k")?;
    let d: f64 = args.parsed_or("d", 8.0)?;
    let eps: f64 = args.parsed_or("eps", 0.2)?;
    let seed: u64 = args.parsed_or("seed", 0)?;
    let w = engine::generate(generator, n, d, eps, k, seed)
        .map_err(|e| CliError::Usage(e.to_string()))?;
    let run = engine::run_protocol(protocol, &w, eps, seed).map_err(|e| match e {
        engine::ReportError::Protocol(p) => CliError::Protocol(p),
        other => CliError::Usage(other.to_string()),
    })?;
    let cost = engine::report_for_run(
        triad_comm::ReportParams {
            protocol: protocol.to_string(),
            generator: generator.to_string(),
            n,
            k,
            d: w.d,
            eps,
            seed,
        },
        &run,
        &run.transcript,
    );
    if let Some(path) = args.optional("transcript") {
        run.transcript
            .write_events_json(BufWriter::new(File::create(path)?))?;
    }
    let rendered = if args.flag("json") {
        format!("{}\n", cost.to_json())
    } else {
        cost.to_text()
    };
    if let Some(path) = args.optional("out") {
        use std::io::Write;
        File::create(path)?.write_all(rendered.as_bytes())?;
        return Ok(format!("wrote {path}\n"));
    }
    Ok(rendered)
}

/// `triad bench --sessions N [--quick]` — the scheduler saturation
/// microbench: drive one batch of `N` sessions over worker pools of
/// 1, 2, 4 and 8 threads and print the measured queries/sec at each,
/// asserting along the way that every worker count produced identical
/// results (see `docs/RUNTIME.md`, "Sessions and scheduling").
pub fn bench(args: &ArgMap) -> Result<String, CliError> {
    if let Some(path) = args.optional("graph-file") {
        return bench_store(args, path);
    }
    let sessions: usize = args.required_parsed("sessions")?;
    if sessions == 0 {
        return Err(CliError::Usage(
            "--sessions needs a positive integer".into(),
        ));
    }
    let scale = if args.flag("quick") {
        triad_bench::experiments::Scale::Quick
    } else {
        triad_bench::experiments::Scale::Full
    };
    let s = triad_bench::sessions::session_saturation(scale, sessions);
    let mut out = format!(
        "scheduler saturation: {} sessions x {} reps over {} distinct inputs \
         (n={}, m={}, k={})\n",
        s.sessions, s.reps, s.distinct_inputs, s.vertices, s.edges, s.players
    );
    for ((w, qps), eff) in triad_bench::sessions::SESSION_WORKER_COUNTS
        .iter()
        .zip(s.qps)
        .zip(s.effective_workers)
    {
        // Requested counts beyond the machine's cores are clamped
        // (Pool::clamped); flag the rows where that happened.
        let clamp = if eff != *w {
            format!(" [effective {eff}]")
        } else {
            String::new()
        };
        out.push_str(&format!(
            "  {w} worker(s): {qps:>10.1} queries/sec{clamp}\n"
        ));
    }
    out.push_str(&format!(
        "cache: {} hits, {} builds; saturation speedup (8w/1w): {:.2}x\n",
        s.cache_hits,
        s.distinct_inputs,
        s.saturation_speedup()
    ));
    Ok(out)
}

/// The `--graph-file` arm of `triad bench`: open a binary CSR container
/// and time the triangle kernels plus a prepared protocol run directly
/// over its backing (mapped or buffered), reporting the memory evidence
/// — file size, owned heap bytes, peak RSS — alongside the timings.
fn bench_store(args: &ArgMap, path: &str) -> Result<String, CliError> {
    let reps: usize = args.parsed_or("reps", 3)?;
    if reps == 0 {
        return Err(CliError::Usage("--reps must be positive".into()));
    }
    let store = CsrStore::open(Path::new(path))?;
    let pool = triad_comm::pool::Pool::current();
    let name = Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("store");
    let t = triad_bench::kernels::time_store_workload(name, &store, reps, &pool);
    let mut out = format!(
        "store bench: {path} (n = {}, m = {}, {} file bytes, backing = {})\n",
        store.vertex_count(),
        store.edge_count(),
        store.file_bytes(),
        if store.mapped() { "mmap" } else { "owned" },
    );
    out.push_str(&format!(
        "  forward kernel:  {:>10.3} ms  ({} triangles)\n",
        t.kernel_count_ms, t.triangles
    ));
    out.push_str(&format!(
        "  parallel kernel: {:>10.3} ms  ({} thread(s))\n",
        t.par_count_ms, t.par_threads
    ));
    if let Some(ms) = t.sim_test_ms {
        out.push_str(&format!(
            "  sim-low test:    {:>10.3} ms  (prepared, graph-free)\n",
            ms
        ));
    }
    out.push_str(&format!(
        "  owned heap: {} bytes{}\n",
        t.store_owned_bytes.unwrap_or(0),
        match t.peak_rss_mb {
            Some(rss) => format!("; peak RSS {rss:.1} MiB"),
            None => String::new(),
        }
    ));
    Ok(out)
}
