//! Minimal `--key value` argument parsing.

use std::collections::HashMap;

/// Parsed `--key value` pairs and bare `--flag` switches.
#[derive(Debug, Clone, Default)]
pub struct ArgMap {
    values: HashMap<String, String>,
}

impl ArgMap {
    /// Parses alternating `--key value` tokens. A `--key` followed by
    /// another option (or by nothing) is a bare flag and parses as the
    /// value `true`, so switches like `--json` need no operand.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] on stray tokens or duplicate options.
    pub fn parse(tokens: &[String]) -> Result<Self, CliError> {
        let mut values = HashMap::new();
        let mut it = tokens.iter().peekable();
        while let Some(tok) = it.next() {
            let key = tok
                .strip_prefix("--")
                .ok_or_else(|| CliError::Usage(format!("expected an option, got `{tok}`")))?;
            let value = match it.peek() {
                Some(next) if !next.starts_with("--") => it.next().unwrap().clone(),
                _ => "true".to_string(),
            };
            if values.insert(key.to_string(), value).is_some() {
                return Err(CliError::Usage(format!("option --{key} given twice")));
            }
        }
        Ok(ArgMap { values })
    }

    /// `true` iff `--key` was given, bare or as `--key true`.
    pub fn flag(&self, key: &str) -> bool {
        self.optional(key) == Some("true")
    }

    /// A required string option.
    pub fn required(&self, key: &str) -> Result<&str, CliError> {
        self.values
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| CliError::Usage(format!("missing required option --{key}")))
    }

    /// An optional string option.
    pub fn optional(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// A required parsed option.
    pub fn required_parsed<T: std::str::FromStr>(&self, key: &str) -> Result<T, CliError> {
        self.required(key)?
            .parse()
            .map_err(|_| CliError::Usage(format!("invalid value for --{key}")))
    }

    /// An optional parsed option with a default.
    pub fn parsed_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.optional(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("invalid value for --{key}"))),
        }
    }
}

/// CLI failure modes.
#[derive(Debug)]
#[non_exhaustive]
pub enum CliError {
    /// Bad arguments; print usage.
    Usage(String),
    /// Filesystem failure.
    Io(std::io::Error),
    /// Malformed graph file.
    Read(triad_graph::io::ReadError),
    /// Generator rejected the parameters.
    Graph(triad_graph::GraphError),
    /// A binary CSR file (`--graph-file`) failed to open or validate.
    Store(triad_graph::store::StoreError),
    /// A protocol rejected the input.
    Protocol(triad_protocols::ProtocolError),
    /// The networked coordinator (`serve`/`connect`) failed.
    Net(triad_comm::NetError),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "{m}"),
            CliError::Io(e) => write!(f, "{e}"),
            CliError::Read(e) => write!(f, "{e}"),
            CliError::Graph(e) => write!(f, "{e}"),
            CliError::Store(e) => write!(f, "{e}"),
            CliError::Protocol(e) => write!(f, "{e}"),
            CliError::Net(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<triad_graph::io::ReadError> for CliError {
    fn from(e: triad_graph::io::ReadError) -> Self {
        CliError::Read(e)
    }
}

impl From<triad_graph::GraphError> for CliError {
    fn from(e: triad_graph::GraphError) -> Self {
        CliError::Graph(e)
    }
}

impl From<triad_graph::store::StoreError> for CliError {
    fn from(e: triad_graph::store::StoreError) -> Self {
        CliError::Store(e)
    }
}

impl From<triad_protocols::ProtocolError> for CliError {
    fn from(e: triad_protocols::ProtocolError) -> Self {
        CliError::Protocol(e)
    }
}

impl From<triad_comm::NetError> for CliError {
    fn from(e: triad_comm::NetError) -> Self {
        CliError::Net(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_pairs() {
        let m = ArgMap::parse(&argv("--n 100 --out file.el")).unwrap();
        assert_eq!(m.required("n").unwrap(), "100");
        assert_eq!(m.required_parsed::<usize>("n").unwrap(), 100);
        assert_eq!(m.optional("missing"), None);
        assert_eq!(m.parsed_or("d", 4.0).unwrap(), 4.0);
    }

    #[test]
    fn rejects_malformed() {
        assert!(ArgMap::parse(&argv("stray")).is_err());
        assert!(ArgMap::parse(&argv("--k 1 --k 2")).is_err());
        let m = ArgMap::parse(&argv("--n xyz")).unwrap();
        assert!(m.required_parsed::<usize>("n").is_err());
        assert!(m.required("missing").is_err());
    }

    #[test]
    fn bare_flags_parse_as_true() {
        let m = ArgMap::parse(&argv("--json --n 10")).unwrap();
        assert!(m.flag("json"));
        assert_eq!(m.required_parsed::<usize>("n").unwrap(), 10);
        let m = ArgMap::parse(&argv("--n 10 --json")).unwrap();
        assert!(m.flag("json"));
        assert!(!m.flag("csv"));
        let m = ArgMap::parse(&argv("--json true")).unwrap();
        assert!(m.flag("json"));
    }
}
