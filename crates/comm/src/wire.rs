//! The `triad` wire protocol: length-prefixed, checksummed binary frames
//! for networked coordinator runs (`triad serve` / `triad connect`).
//!
//! This module is the **reference codec** for the format specified
//! normatively in `docs/NETWORKING.md`. Every frame is
//!
//! ```text
//! [len: u32 BE] [version: u8] [type: u8] [body: len-2 bytes] [checksum: u64 BE]
//! ```
//!
//! where `len` counts the version byte, the type byte and the body, and
//! `checksum` is [`checksum_bytes`] over exactly those `len` bytes. A
//! frame that fails its checksum or cannot be decoded surfaces as
//! [`WireError::Corrupt`] — mapped to
//! [`RunError::Corrupt`](crate::runtime::RunError::Corrupt) by the TCP
//! transport — instead of desynchronizing the stream silently.
//!
//! The codec is hand-rolled: this build environment vendors a no-op
//! `serde` shim (see `vendor/README.md`), so nothing here may rely on
//! derived serialization. All integers are big-endian; floats travel as
//! their IEEE-754 bit patterns; strings are UTF-8 with a `u32` length
//! prefix.
//!
//! Wire overhead (length prefixes, checksums, correlation ids) is
//! transport bookkeeping and is **never** charged to a protocol's
//! communication cost: the recorder charges the model costs
//! [`PlayerRequest::bit_len`] / [`Payload::bit_len`], which is why a
//! fault-free TCP run is bit-for-bit identical to
//! [`LocalTransport`](crate::runtime::LocalTransport) accounting.

use crate::message::Payload;
use crate::rand::mix64;
use crate::request::PlayerRequest;
use crate::runtime::CostModel;
use crate::simultaneous::SimMessage;
use std::borrow::Cow;
use std::io::{Read, Write};
use triad_graph::kernels::{EdgeBitset, RowRef};
use triad_graph::{Edge, Triangle, VertexId};

/// The protocol version carried by every frame. Peers speaking a
/// different version are rejected during the handshake with
/// [`WireError::Version`]. Version 2 extended the handshake with
/// authentication and resume credentials: `Hello` carries an optional
/// auth token and an optional [`ResumeClaim`], `Welcome` issues a
/// per-session resume nonce, and `Error` carries a typed [`ErrorCode`]
/// alongside its human-readable reason (see `docs/NETWORKING.md`).
pub const WIRE_VERSION: u8 = 2;

/// Upper bound on the framed length (version + type + body) a peer may
/// announce. Larger lengths are treated as corruption before any
/// allocation happens.
pub const MAX_FRAME_BYTES: u32 = 1 << 26; // 64 MiB

/// Upper bound on the vertex-count a bitset payload (tag 10) may
/// declare. Decoding an [`EdgeBitset`] allocates one row slot per
/// vertex, so the `n` field is attacker-sized unless capped; the bound
/// matches the `Vertices` decoder's element cap. Larger values are
/// corruption, rejected before any allocation.
pub const MAX_BITSET_VERTICES: u32 = 1 << 20;

/// Checksum of a byte string: a [`mix64`] fold over 8-byte chunks with
/// the length mixed in last — the same diffusion family as
/// [`checksum_payload`](crate::fault::checksum_payload), applied to wire
/// bytes instead of payload structure.
pub fn checksum_bytes(bytes: &[u8]) -> u64 {
    let mut h = 0x5452_4941_4457_4952u64; // "TRIADWIR"
    for chunk in bytes.chunks(8) {
        let mut buf = [0u8; 8];
        buf[..chunk.len()].copy_from_slice(chunk);
        h = mix64(h ^ u64::from_be_bytes(buf));
    }
    mix64(h ^ bytes.len() as u64)
}

/// Everything that can go wrong encoding, decoding or transporting a
/// frame. The TCP transport maps these onto the
/// [`RunError`](crate::runtime::RunError) taxonomy (see
/// `docs/NETWORKING.md`).
#[derive(Debug)]
#[non_exhaustive]
pub enum WireError {
    /// The underlying socket failed (includes unexpected EOF and read
    /// deadlines; see [`WireError::is_timeout`]).
    Io(std::io::Error),
    /// The frame failed its checksum, declared an impossible length, or
    /// its body did not decode.
    Corrupt(String),
    /// The peer speaks a different protocol version.
    Version {
        /// The version byte the peer sent.
        got: u8,
    },
    /// A structurally valid frame arrived where it makes no sense (e.g.
    /// a `Welcome` sent to the coordinator).
    Protocol(String),
}

impl WireError {
    /// `true` when the error is a read deadline expiring rather than a
    /// dead or garbled connection — the retryable case.
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            WireError::Io(e) if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            )
        )
    }

    fn corrupt(what: impl Into<String>) -> Self {
        WireError::Corrupt(what.into())
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "socket error: {e}"),
            WireError::Corrupt(what) => write!(f, "corrupt frame: {what}"),
            WireError::Version { got } => {
                write!(f, "peer speaks wire version {got}, expected {WIRE_VERSION}")
            }
            WireError::Protocol(what) => write!(f, "protocol violation: {what}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// A machine-readable cause carried by [`WireMessage::Error`] so peers
/// can react to a rejection without parsing the human-readable reason
/// (e.g. retry a rejoin on [`ErrorCode::SlotAttached`], give up on
/// [`ErrorCode::Unauthorized`]). The `u8` values are normative wire
/// bytes; an unknown byte decodes as [`WireError::Corrupt`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// An unclassified failure; the reason string is the only detail.
    Generic,
    /// The credential presented in `Hello` was rejected: wrong or
    /// missing auth token, or an invalid resume nonce.
    Unauthorized,
    /// A resume claim arrived after the slot's reconnect window had
    /// already expired.
    WindowExpired,
    /// A resume claim named a slot that is still attached to a live
    /// connection. Transient: a claimant racing the coordinator's
    /// detach detection should back off and retry.
    SlotAttached,
}

impl ErrorCode {
    /// The normative wire byte for this code.
    pub fn wire_byte(self) -> u8 {
        match self {
            ErrorCode::Generic => 0,
            ErrorCode::Unauthorized => 1,
            ErrorCode::WindowExpired => 2,
            ErrorCode::SlotAttached => 3,
        }
    }

    fn from_wire_byte(b: u8) -> Result<Self, WireError> {
        Ok(match b {
            0 => ErrorCode::Generic,
            1 => ErrorCode::Unauthorized,
            2 => ErrorCode::WindowExpired,
            3 => ErrorCode::SlotAttached,
            other => return Err(WireError::corrupt(format!("unknown error code {other}"))),
        })
    }
}

/// A player's claim, inside [`WireMessage::Hello`], to resume a slot it
/// already registered this session: the slot index, the resume nonce the
/// coordinator issued in that slot's [`Welcome`], and the last
/// correlation id the player answered before losing the connection
/// (diagnostic; replay is driven by fresh correlation ids, see
/// `docs/NETWORKING.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResumeClaim {
    /// The slot being resumed.
    pub slot: u32,
    /// The per-session resume nonce issued in the slot's `Welcome`.
    pub nonce: u64,
    /// The highest correlation id the player acknowledged before the
    /// connection dropped.
    pub last_acked: u64,
}

/// The coordinator's greeting to a player that completed the handshake:
/// everything the player needs to participate without any out-of-band
/// agreement beyond its share file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Welcome {
    /// The player index `j` assigned to this connection (`0..k`).
    pub player: u32,
    /// Total number of players the run expects.
    pub k: u32,
    /// Number of vertices `n` of the global graph.
    pub n: u64,
    /// The shared-randomness seed in force for the run.
    pub seed: u64,
    /// The charging model of the run.
    pub cost_model: CostModel,
    /// The protocol name (`unrestricted`, `low`, `high`, `oblivious`,
    /// `exact`).
    pub protocol: String,
    /// Free-form `key=value` parameters (e.g. `eps=0.2 d=8`), parsed by
    /// the player to reconstruct the protocol object exactly.
    pub params: String,
    /// Per-session resume credential for this slot: a later `Hello`
    /// carrying a [`ResumeClaim`] with this nonce may reattach to the
    /// slot while its reconnect window is open. `0` when the session
    /// layer is disabled.
    pub resume_nonce: u64,
}

/// One frame of the wire protocol. The `u8` tags are part of the
/// normative format — see the frame-type table in `docs/NETWORKING.md`.
#[derive(Debug, Clone, PartialEq)]
pub enum WireMessage {
    /// Player → coordinator: request registration, optionally claiming
    /// an explicit slot (`None` = any free slot), optionally presenting
    /// an auth token, or — instead of fresh registration — a
    /// [`ResumeClaim`] to reattach to a detached slot.
    Hello {
        /// Explicit player index to claim, if any. Ignored when
        /// `resume` is present (the claim names its own slot).
        slot: Option<u32>,
        /// The shared secret for daemons started with an auth token.
        token: Option<String>,
        /// A claim to resume a previously registered slot.
        resume: Option<ResumeClaim>,
    },
    /// Coordinator → player: registration accepted.
    Welcome(Welcome),
    /// Coordinator → player: one [`PlayerRequest`], tagged with a
    /// correlation id the response must echo.
    Request {
        /// Correlation id (monotonic per connection).
        id: u64,
        /// The request itself.
        req: PlayerRequest,
    },
    /// Player → coordinator: the response to the [`WireMessage::Request`]
    /// with the same id. Stale ids (from a delivery the coordinator
    /// already timed out) are discarded by the receiver.
    Response {
        /// Correlation id being answered.
        id: u64,
        /// The response payload.
        payload: Payload<'static>,
    },
    /// Coordinator → player: compute and send your one-shot simultaneous
    /// message.
    SimRequest {
        /// Correlation id (monotonic per connection).
        id: u64,
    },
    /// Player → coordinator: the simultaneous message (payloads with
    /// their phase tags).
    SimResponse {
        /// Correlation id being answered.
        id: u64,
        /// The player's one-shot message.
        message: SimMessage<'static>,
    },
    /// Coordinator → player: switch to a new shared-randomness seed
    /// (Newman's conversion). The player must answer [`WireMessage::Ack`].
    AdoptShared {
        /// The new seed.
        seed: u64,
    },
    /// Player → coordinator: control acknowledgement.
    Ack,
    /// Either direction: the sender cannot continue; the connection is
    /// dead afterwards.
    Error {
        /// Machine-readable cause.
        code: ErrorCode,
        /// Human-readable cause.
        reason: String,
    },
    /// Coordinator → player: the run is over; carries a one-line result
    /// summary, after which both sides close.
    Goodbye {
        /// The run's verdict line.
        summary: String,
    },
}

impl WireMessage {
    /// The frame-type byte (normative; see `docs/NETWORKING.md`).
    pub fn type_byte(&self) -> u8 {
        match self {
            WireMessage::Hello { .. } => 0x01,
            WireMessage::Welcome(_) => 0x02,
            WireMessage::Request { .. } => 0x03,
            WireMessage::Response { .. } => 0x04,
            WireMessage::SimRequest { .. } => 0x05,
            WireMessage::SimResponse { .. } => 0x06,
            WireMessage::AdoptShared { .. } => 0x07,
            WireMessage::Ack => 0x08,
            WireMessage::Error { .. } => 0x09,
            WireMessage::Goodbye { .. } => 0x0A,
        }
    }

    /// A short name for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            WireMessage::Hello { .. } => "hello",
            WireMessage::Welcome(_) => "welcome",
            WireMessage::Request { .. } => "request",
            WireMessage::Response { .. } => "response",
            WireMessage::SimRequest { .. } => "sim-request",
            WireMessage::SimResponse { .. } => "sim-response",
            WireMessage::AdoptShared { .. } => "adopt-shared",
            WireMessage::Ack => "ack",
            WireMessage::Error { .. } => "error",
            WireMessage::Goodbye { .. } => "goodbye",
        }
    }
}

// ---------------------------------------------------------------------------
// Encoding

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new() -> Self {
        Enc { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn vertex(&mut self, v: VertexId) {
        self.u32(v.0);
    }

    fn edge(&mut self, e: Edge) {
        self.vertex(e.u());
        self.vertex(e.v());
    }

    fn edges(&mut self, es: &[Edge]) {
        self.u32(es.len() as u32);
        for e in es {
            self.edge(*e);
        }
    }
}

fn encode_request(enc: &mut Enc, req: &PlayerRequest) {
    match req {
        PlayerRequest::HasEdge(e) => {
            enc.u8(0);
            enc.edge(*e);
        }
        PlayerRequest::FirstIncidentEdge { v, perm_tag } => {
            enc.u8(1);
            enc.vertex(*v);
            enc.u64(*perm_tag);
        }
        PlayerRequest::FirstEdge { perm_tag } => {
            enc.u8(2);
            enc.u64(*perm_tag);
        }
        PlayerRequest::LocalDegree { v } => {
            enc.u8(3);
            enc.vertex(*v);
        }
        PlayerRequest::LocalEdgeCount => enc.u8(4),
        PlayerRequest::EdgeCountMsb => enc.u8(5),
        PlayerRequest::GlobalSampleHit { tag, p } => {
            enc.u8(6);
            enc.u64(*tag);
            enc.f64(*p);
        }
        PlayerRequest::DegreeMsb { v } => {
            enc.u8(7);
            enc.vertex(*v);
        }
        PlayerRequest::DegreePrefix { v, prefix_bits } => {
            enc.u8(8);
            enc.vertex(*v);
            enc.u32(*prefix_bits);
        }
        PlayerRequest::SampleHit { v, tag, p } => {
            enc.u8(9);
            enc.vertex(*v);
            enc.u64(*tag);
            enc.f64(*p);
        }
        PlayerRequest::FirstSuspectInBucket {
            bucket,
            k,
            perm_tag,
        } => {
            enc.u8(10);
            enc.u64(*bucket as u64);
            enc.u64(*k as u64);
            enc.u64(*perm_tag);
        }
        PlayerRequest::SuspectSample {
            bucket,
            k,
            perm_tag,
            count,
        } => {
            enc.u8(11);
            enc.u64(*bucket as u64);
            enc.u64(*k as u64);
            enc.u64(*perm_tag);
            enc.u64(*count as u64);
        }
        PlayerRequest::IncidentEdgesSampled { v, tag, p, cap } => {
            enc.u8(12);
            enc.vertex(*v);
            enc.u64(*tag);
            enc.f64(*p);
            enc.u64(*cap as u64);
        }
        PlayerRequest::FindClosingTriangle { edges } => {
            enc.u8(13);
            enc.edges(edges);
        }
        PlayerRequest::InducedEdges { tag, p, cap } => {
            enc.u8(14);
            enc.u64(*tag);
            enc.f64(*p);
            enc.u64(*cap as u64);
        }
        PlayerRequest::RsEdges {
            r_tag,
            p_r,
            s_tag,
            p_s,
            cap,
        } => {
            enc.u8(15);
            enc.u64(*r_tag);
            enc.f64(*p_r);
            enc.u64(*s_tag);
            enc.f64(*p_s);
            enc.u64(*cap as u64);
        }
    }
}

fn encode_payload(enc: &mut Enc, p: &Payload<'_>) {
    match p {
        Payload::Empty => enc.u8(0),
        Payload::Bit(b) => {
            enc.u8(1);
            enc.u8(u8::from(*b));
        }
        Payload::Bits(v, w) => {
            enc.u8(2);
            enc.u64(*v);
            enc.u32(*w);
        }
        Payload::Count(c) => {
            enc.u8(3);
            enc.u64(*c);
        }
        Payload::Vertex(o) => {
            enc.u8(4);
            match o {
                None => enc.u8(0),
                Some(v) => {
                    enc.u8(1);
                    enc.vertex(*v);
                }
            }
        }
        Payload::Vertices(vs) => {
            enc.u8(5);
            enc.u32(vs.len() as u32);
            for v in vs {
                enc.vertex(*v);
            }
        }
        Payload::Edge(o) => {
            enc.u8(6);
            match o {
                None => enc.u8(0),
                Some(e) => {
                    enc.u8(1);
                    enc.edge(*e);
                }
            }
        }
        Payload::Edges(es) => {
            enc.u8(7);
            enc.edges(es);
        }
        Payload::EdgeBits(set) => {
            // Normative bitset body (docs/NETWORKING.md): n, the number
            // of non-empty rows, then each row as (u, kind, data) with
            // kind 0 = sparse ascending ids, kind 1 = ⌈n/64⌉ packed
            // words. Rows travel in ascending u order.
            enc.u8(10);
            enc.u32(set.n() as u32);
            enc.u32(set.rows().count() as u32);
            for (u, row) in set.rows() {
                enc.u32(u);
                match row {
                    RowRef::Sparse(ids) => {
                        enc.u8(0);
                        enc.u32(ids.len() as u32);
                        for &id in ids {
                            enc.u32(id);
                        }
                    }
                    RowRef::Dense(words) => {
                        enc.u8(1);
                        enc.u32(words.len() as u32);
                        for &w in words {
                            enc.u64(w);
                        }
                    }
                }
            }
        }
        Payload::Triangle(o) => {
            enc.u8(8);
            match o {
                None => enc.u8(0),
                Some(t) => {
                    enc.u8(1);
                    for v in t.vertices() {
                        enc.vertex(v);
                    }
                }
            }
        }
        Payload::Probability(p) => {
            enc.u8(9);
            enc.f64(*p);
        }
    }
}

fn encode_sim_message(enc: &mut Enc, m: &SimMessage<'_>) {
    enc.u32(m.payloads().len() as u32);
    for (payload, phase) in m.payloads().iter().zip(m.phases()) {
        enc.str(phase);
        encode_payload(enc, payload);
    }
}

fn cost_model_byte(m: CostModel) -> u8 {
    match m {
        CostModel::Coordinator => 0,
        CostModel::Blackboard => 1,
        CostModel::MessagePassing => 2,
    }
}

fn encode_body(enc: &mut Enc, msg: &WireMessage) {
    match msg {
        WireMessage::Hello {
            slot,
            token,
            resume,
        } => {
            match slot {
                None => enc.u8(0),
                Some(s) => {
                    enc.u8(1);
                    enc.u32(*s);
                }
            }
            match token {
                None => enc.u8(0),
                Some(t) => {
                    enc.u8(1);
                    enc.str(t);
                }
            }
            match resume {
                None => enc.u8(0),
                Some(claim) => {
                    enc.u8(1);
                    enc.u32(claim.slot);
                    enc.u64(claim.nonce);
                    enc.u64(claim.last_acked);
                }
            }
        }
        WireMessage::Welcome(w) => {
            enc.u32(w.player);
            enc.u32(w.k);
            enc.u64(w.n);
            enc.u64(w.seed);
            enc.u8(cost_model_byte(w.cost_model));
            enc.str(&w.protocol);
            enc.str(&w.params);
            enc.u64(w.resume_nonce);
        }
        WireMessage::Request { id, req } => {
            enc.u64(*id);
            encode_request(enc, req);
        }
        WireMessage::Response { id, payload } => {
            enc.u64(*id);
            encode_payload(enc, payload);
        }
        WireMessage::SimRequest { id } => enc.u64(*id),
        WireMessage::SimResponse { id, message } => {
            enc.u64(*id);
            encode_sim_message(enc, message);
        }
        WireMessage::AdoptShared { seed } => enc.u64(*seed),
        WireMessage::Ack => {}
        WireMessage::Error { code, reason } => {
            enc.u8(code.wire_byte());
            enc.str(reason);
        }
        WireMessage::Goodbye { summary } => enc.str(summary),
    }
}

/// Encodes `msg` as one complete frame (length prefix, version, type,
/// body, checksum) and writes it to `w`, flushing afterwards.
///
/// # Errors
///
/// Propagates any I/O failure from the writer.
pub fn write_frame<W: Write>(w: &mut W, msg: &WireMessage) -> std::io::Result<()> {
    let mut enc = Enc::new();
    enc.u8(WIRE_VERSION);
    enc.u8(msg.type_byte());
    encode_body(&mut enc, msg);
    let framed = enc.buf;
    let mut out = Vec::with_capacity(framed.len() + 12);
    out.extend_from_slice(&(framed.len() as u32).to_be_bytes());
    out.extend_from_slice(&framed);
    out.extend_from_slice(&checksum_bytes(&framed).to_be_bytes());
    w.write_all(&out)?;
    w.flush()
}

// ---------------------------------------------------------------------------
// Decoding

struct Dec<'b> {
    buf: &'b [u8],
}

impl<'b> Dec<'b> {
    fn take(&mut self, len: usize) -> Result<&'b [u8], WireError> {
        if self.buf.len() < len {
            return Err(WireError::corrupt("truncated body"));
        }
        let (head, tail) = self.buf.split_at(len);
        self.buf = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn usize(&mut self) -> Result<usize, WireError> {
        usize::try_from(self.u64()?).map_err(|_| WireError::corrupt("count overflows usize"))
    }

    fn str(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::corrupt("non-UTF-8 string"))
    }

    fn vertex(&mut self) -> Result<VertexId, WireError> {
        Ok(VertexId(self.u32()?))
    }

    fn edge(&mut self) -> Result<Edge, WireError> {
        let u = self.vertex()?;
        let v = self.vertex()?;
        if u == v {
            return Err(WireError::corrupt("self-loop edge"));
        }
        Ok(Edge::new(u, v))
    }

    fn edges(&mut self) -> Result<Vec<Edge>, WireError> {
        let len = self.u32()? as usize;
        // The length is attacker-sized only up to the checked frame
        // bound; an edge costs 8 body bytes, so this cannot overshoot.
        let mut out = Vec::with_capacity(len.min(self.buf.len() / 8 + 1));
        for _ in 0..len {
            out.push(self.edge()?);
        }
        Ok(out)
    }

    fn done(&self) -> Result<(), WireError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(WireError::corrupt("trailing bytes after body"))
        }
    }
}

fn decode_request(d: &mut Dec<'_>) -> Result<PlayerRequest, WireError> {
    Ok(match d.u8()? {
        0 => PlayerRequest::HasEdge(d.edge()?),
        1 => PlayerRequest::FirstIncidentEdge {
            v: d.vertex()?,
            perm_tag: d.u64()?,
        },
        2 => PlayerRequest::FirstEdge { perm_tag: d.u64()? },
        3 => PlayerRequest::LocalDegree { v: d.vertex()? },
        4 => PlayerRequest::LocalEdgeCount,
        5 => PlayerRequest::EdgeCountMsb,
        6 => PlayerRequest::GlobalSampleHit {
            tag: d.u64()?,
            p: d.f64()?,
        },
        7 => PlayerRequest::DegreeMsb { v: d.vertex()? },
        8 => PlayerRequest::DegreePrefix {
            v: d.vertex()?,
            prefix_bits: d.u32()?,
        },
        9 => PlayerRequest::SampleHit {
            v: d.vertex()?,
            tag: d.u64()?,
            p: d.f64()?,
        },
        10 => PlayerRequest::FirstSuspectInBucket {
            bucket: d.usize()?,
            k: d.usize()?,
            perm_tag: d.u64()?,
        },
        11 => PlayerRequest::SuspectSample {
            bucket: d.usize()?,
            k: d.usize()?,
            perm_tag: d.u64()?,
            count: d.usize()?,
        },
        12 => PlayerRequest::IncidentEdgesSampled {
            v: d.vertex()?,
            tag: d.u64()?,
            p: d.f64()?,
            cap: d.usize()?,
        },
        13 => PlayerRequest::FindClosingTriangle { edges: d.edges()? },
        14 => PlayerRequest::InducedEdges {
            tag: d.u64()?,
            p: d.f64()?,
            cap: d.usize()?,
        },
        15 => PlayerRequest::RsEdges {
            r_tag: d.u64()?,
            p_r: d.f64()?,
            s_tag: d.u64()?,
            p_s: d.f64()?,
            cap: d.usize()?,
        },
        tag => return Err(WireError::corrupt(format!("unknown request tag {tag}"))),
    })
}

fn decode_payload(d: &mut Dec<'_>) -> Result<Payload<'static>, WireError> {
    Ok(match d.u8()? {
        0 => Payload::Empty,
        1 => Payload::Bit(d.u8()? != 0),
        2 => {
            let v = d.u64()?;
            Payload::Bits(v, d.u32()?)
        }
        3 => Payload::Count(d.u64()?),
        4 => Payload::Vertex(match d.u8()? {
            0 => None,
            _ => Some(d.vertex()?),
        }),
        5 => {
            let len = d.u32()? as usize;
            let mut vs = Vec::with_capacity(len.min(1 << 20));
            for _ in 0..len {
                vs.push(d.vertex()?);
            }
            Payload::Vertices(vs)
        }
        6 => Payload::Edge(match d.u8()? {
            0 => None,
            _ => Some(d.edge()?),
        }),
        7 => Payload::Edges(d.edges()?.into()),
        8 => Payload::Triangle(match d.u8()? {
            0 => None,
            _ => {
                let a = d.vertex()?;
                let b = d.vertex()?;
                let c = d.vertex()?;
                if a == b || b == c || a == c {
                    return Err(WireError::corrupt("degenerate triangle"));
                }
                Some(Triangle::new(a, b, c))
            }
        }),
        9 => Payload::Probability(d.f64()?),
        10 => Payload::EdgeBits(Cow::Owned(decode_edge_bitset(d)?)),
        tag => return Err(WireError::corrupt(format!("unknown payload tag {tag}"))),
    })
}

/// Decodes the tag-10 bitset body, validating every declared size and
/// every id range *before* the allocation it would drive: `n` is capped
/// by [`MAX_BITSET_VERTICES`], row and id counts are checked against the
/// bytes actually remaining in the frame, row indices are strictly
/// ascending and in range, sparse ids are strictly ascending inside
/// `(u, n)`, and dense rows must be exactly `⌈n/64⌉` words with no bit
/// at or below `u` and no bit at or past `n`.
fn decode_edge_bitset(d: &mut Dec<'_>) -> Result<EdgeBitset, WireError> {
    let n = d.u32()?;
    if n > MAX_BITSET_VERTICES {
        return Err(WireError::corrupt(format!(
            "bitset vertex count {n} exceeds {MAX_BITSET_VERTICES}"
        )));
    }
    let n = n as usize;
    let rows = d.u32()? as usize;
    if rows > n {
        return Err(WireError::corrupt(
            "bitset declares more rows than vertices",
        ));
    }
    // A row costs at least u(4) + kind(1) + count(4) = 9 body bytes.
    if rows * 9 > d.buf.len() {
        return Err(WireError::corrupt("bitset row count exceeds frame"));
    }
    let words = n.div_ceil(64);
    let mut set = EdgeBitset::new(n);
    let mut prev_row: Option<u32> = None;
    for _ in 0..rows {
        let u = d.u32()?;
        if u as usize >= n {
            return Err(WireError::corrupt("bitset row index out of range"));
        }
        if prev_row.is_some_and(|p| u <= p) {
            return Err(WireError::corrupt("bitset rows not strictly ascending"));
        }
        prev_row = Some(u);
        match d.u8()? {
            0 => {
                let count = d.u32()? as usize;
                if count == 0 {
                    return Err(WireError::corrupt("empty sparse bitset row"));
                }
                if count * 4 > d.buf.len() {
                    return Err(WireError::corrupt("sparse bitset row exceeds frame"));
                }
                let mut prev = u;
                for _ in 0..count {
                    let v = d.u32()?;
                    if v <= prev {
                        return Err(WireError::corrupt(
                            "sparse bitset ids not strictly ascending above the row",
                        ));
                    }
                    if v as usize >= n {
                        return Err(WireError::corrupt("sparse bitset id out of range"));
                    }
                    prev = v;
                    set.insert(Edge::new(VertexId(u), VertexId(v)));
                }
            }
            1 => {
                let wc = d.u32()? as usize;
                if wc != words {
                    return Err(WireError::corrupt(format!(
                        "dense bitset row is {wc} words, expected {words}"
                    )));
                }
                if wc * 8 > d.buf.len() {
                    return Err(WireError::corrupt("dense bitset row exceeds frame"));
                }
                let mut row = vec![0u64; wc].into_boxed_slice();
                for w in row.iter_mut() {
                    *w = d.u64()?;
                }
                // Every set bit must name a neighbor in (u, n): bits at
                // or below the row index would break canonical order,
                // bits at or past n are trailing garbage.
                for (wi, &word) in row.iter().enumerate() {
                    let base = wi * 64;
                    let lo = (u as usize + 1).max(base);
                    let hi = n.min(base + 64);
                    let allowed = if lo >= hi {
                        0u64
                    } else if hi - lo == 64 {
                        !0u64
                    } else {
                        ((1u64 << (hi - lo)) - 1) << (lo - base)
                    };
                    if word & !allowed != 0 {
                        return Err(WireError::corrupt(
                            "dense bitset row has bits outside (u, n)",
                        ));
                    }
                }
                if row.iter().all(|&w| w == 0) {
                    return Err(WireError::corrupt("empty dense bitset row"));
                }
                set.set_dense_row(u, row);
            }
            kind => {
                return Err(WireError::corrupt(format!(
                    "unknown bitset row kind {kind}"
                )));
            }
        }
    }
    Ok(set)
}

/// Interns a phase name into the `&'static str` world of
/// [`SimMessage`]. Phase names form a small closed set per protocol, so
/// the one-time leak per distinct name is bounded for any process
/// lifetime; repeated names return the same pointer.
pub fn intern_phase(name: &str) -> &'static str {
    use std::collections::BTreeSet;
    use std::sync::{Mutex, OnceLock};
    static REGISTRY: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();
    let registry = REGISTRY.get_or_init(|| Mutex::new(BTreeSet::new()));
    let mut set = registry
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(existing) = set.get(name) {
        return existing;
    }
    let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
    set.insert(leaked);
    leaked
}

fn decode_sim_message(d: &mut Dec<'_>) -> Result<SimMessage<'static>, WireError> {
    let len = d.u32()? as usize;
    let mut m = SimMessage::empty();
    for _ in 0..len {
        let phase = d.str()?;
        let payload = decode_payload(d)?;
        m.push_phased(payload, intern_phase(&phase));
    }
    Ok(m)
}

fn decode_cost_model(b: u8) -> Result<CostModel, WireError> {
    Ok(match b {
        0 => CostModel::Coordinator,
        1 => CostModel::Blackboard,
        2 => CostModel::MessagePassing,
        other => return Err(WireError::corrupt(format!("unknown cost model {other}"))),
    })
}

fn decode_body(type_byte: u8, body: &[u8]) -> Result<WireMessage, WireError> {
    let mut d = Dec { buf: body };
    let msg = match type_byte {
        0x01 => WireMessage::Hello {
            slot: match d.u8()? {
                0 => None,
                _ => Some(d.u32()?),
            },
            token: match d.u8()? {
                0 => None,
                _ => Some(d.str()?),
            },
            resume: match d.u8()? {
                0 => None,
                _ => Some(ResumeClaim {
                    slot: d.u32()?,
                    nonce: d.u64()?,
                    last_acked: d.u64()?,
                }),
            },
        },
        0x02 => WireMessage::Welcome(Welcome {
            player: d.u32()?,
            k: d.u32()?,
            n: d.u64()?,
            seed: d.u64()?,
            cost_model: decode_cost_model(d.u8()?)?,
            protocol: d.str()?,
            params: d.str()?,
            resume_nonce: d.u64()?,
        }),
        0x03 => WireMessage::Request {
            id: d.u64()?,
            req: decode_request(&mut d)?,
        },
        0x04 => WireMessage::Response {
            id: d.u64()?,
            payload: decode_payload(&mut d)?,
        },
        0x05 => WireMessage::SimRequest { id: d.u64()? },
        0x06 => WireMessage::SimResponse {
            id: d.u64()?,
            message: decode_sim_message(&mut d)?,
        },
        0x07 => WireMessage::AdoptShared { seed: d.u64()? },
        0x08 => WireMessage::Ack,
        0x09 => WireMessage::Error {
            code: ErrorCode::from_wire_byte(d.u8()?)?,
            reason: d.str()?,
        },
        0x0A => WireMessage::Goodbye { summary: d.str()? },
        other => return Err(WireError::corrupt(format!("unknown frame type {other}"))),
    };
    d.done()?;
    Ok(msg)
}

/// Reads one complete frame from `r`, verifying length bounds, version
/// and checksum before decoding.
///
/// # Errors
///
/// [`WireError::Io`] on socket failure or EOF (a read deadline surfaces
/// as an `Io` error for which [`WireError::is_timeout`] is `true`),
/// [`WireError::Corrupt`] on checksum or decode failure, and
/// [`WireError::Version`] on a version mismatch.
pub fn read_frame<R: Read>(r: &mut R) -> Result<WireMessage, WireError> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_be_bytes(len_buf);
    if !(2..=MAX_FRAME_BYTES).contains(&len) {
        return Err(WireError::corrupt(format!("impossible frame length {len}")));
    }
    let mut framed = vec![0u8; len as usize];
    r.read_exact(&mut framed)?;
    let mut sum_buf = [0u8; 8];
    r.read_exact(&mut sum_buf)?;
    if u64::from_be_bytes(sum_buf) != checksum_bytes(&framed) {
        return Err(WireError::corrupt("checksum mismatch"));
    }
    if framed[0] != WIRE_VERSION {
        return Err(WireError::Version { got: framed[0] });
    }
    decode_body(framed[1], &framed[2..])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transcript::DEFAULT_PHASE;
    use std::io::Cursor;

    fn roundtrip(msg: &WireMessage) -> WireMessage {
        let mut buf = Vec::new();
        write_frame(&mut buf, msg).unwrap();
        read_frame(&mut Cursor::new(buf)).unwrap()
    }

    fn e(a: u32, b: u32) -> Edge {
        Edge::new(VertexId(a), VertexId(b))
    }

    #[test]
    fn every_request_variant_roundtrips() {
        let reqs = vec![
            PlayerRequest::HasEdge(e(0, 1)),
            PlayerRequest::FirstIncidentEdge {
                v: VertexId(3),
                perm_tag: 42,
            },
            PlayerRequest::FirstEdge { perm_tag: 7 },
            PlayerRequest::LocalDegree { v: VertexId(1) },
            PlayerRequest::LocalEdgeCount,
            PlayerRequest::EdgeCountMsb,
            PlayerRequest::GlobalSampleHit { tag: 9, p: 0.25 },
            PlayerRequest::DegreeMsb { v: VertexId(2) },
            PlayerRequest::DegreePrefix {
                v: VertexId(5),
                prefix_bits: 3,
            },
            PlayerRequest::SampleHit {
                v: VertexId(4),
                tag: 11,
                p: 0.5,
            },
            PlayerRequest::FirstSuspectInBucket {
                bucket: 2,
                k: 4,
                perm_tag: 13,
            },
            PlayerRequest::SuspectSample {
                bucket: 1,
                k: 3,
                perm_tag: 17,
                count: 6,
            },
            PlayerRequest::IncidentEdgesSampled {
                v: VertexId(6),
                tag: 19,
                p: 0.125,
                cap: 32,
            },
            PlayerRequest::FindClosingTriangle {
                edges: vec![e(0, 1), e(1, 2)],
            },
            PlayerRequest::InducedEdges {
                tag: 23,
                p: 0.75,
                cap: 64,
            },
            PlayerRequest::RsEdges {
                r_tag: 29,
                p_r: 0.1,
                s_tag: 31,
                p_s: 0.9,
                cap: 128,
            },
        ];
        for req in reqs {
            let back = roundtrip(&WireMessage::Request {
                id: 99,
                req: req.clone(),
            });
            assert_eq!(
                back,
                WireMessage::Request { id: 99, req },
                "request failed wire roundtrip"
            );
        }
    }

    #[test]
    fn every_payload_variant_roundtrips() {
        let payloads: Vec<Payload<'static>> = vec![
            Payload::Empty,
            Payload::Bit(true),
            Payload::Bit(false),
            Payload::Bits(0b1011, 4),
            Payload::Count(123_456),
            Payload::Vertex(None),
            Payload::Vertex(Some(VertexId(7))),
            Payload::Vertices(vec![VertexId(1), VertexId(2)]),
            Payload::Edge(None),
            Payload::Edge(Some(e(3, 4))),
            Payload::Edges(vec![e(0, 1), e(2, 3)].into()),
            Payload::Edges(Vec::new().into()),
            Payload::EdgeBits(Cow::Owned(EdgeBitset::from_edges(
                16,
                vec![e(0, 1), e(2, 3), e(0, 15)],
            ))),
            // A hub row over many vertices promotes to dense, so this
            // exercises the kind-1 word body.
            Payload::EdgeBits(Cow::Owned(EdgeBitset::from_edges(
                200,
                (1..200u32).map(|v| e(0, v)).collect::<Vec<_>>(),
            ))),
            Payload::EdgeBits(Cow::Owned(EdgeBitset::new(5))),
            Payload::EdgeBits(Cow::Owned(EdgeBitset::new(0))),
            Payload::Triangle(None),
            Payload::Triangle(Some(Triangle::new(VertexId(0), VertexId(1), VertexId(2)))),
            Payload::Probability(0.375),
        ];
        for payload in payloads {
            let back = roundtrip(&WireMessage::Response {
                id: 5,
                payload: payload.clone(),
            });
            assert_eq!(back, WireMessage::Response { id: 5, payload });
        }
    }

    #[test]
    fn handshake_and_control_frames_roundtrip() {
        let welcome = Welcome {
            player: 2,
            k: 4,
            n: 1024,
            seed: 0xDEAD_BEEF,
            cost_model: CostModel::Blackboard,
            protocol: "low".into(),
            params: "eps=0.2 d=8".into(),
            resume_nonce: 0x5EED_D00D,
        };
        for msg in [
            WireMessage::Hello {
                slot: None,
                token: None,
                resume: None,
            },
            WireMessage::Hello {
                slot: Some(3),
                token: None,
                resume: None,
            },
            WireMessage::Hello {
                slot: Some(1),
                token: Some("s3cret".into()),
                resume: None,
            },
            WireMessage::Hello {
                slot: None,
                token: Some("s3cret".into()),
                resume: Some(ResumeClaim {
                    slot: 2,
                    nonce: 0xDEAD_5EED,
                    last_acked: 17,
                }),
            },
            WireMessage::Welcome(welcome),
            WireMessage::SimRequest { id: 1 },
            WireMessage::AdoptShared { seed: 77 },
            WireMessage::Ack,
            WireMessage::Error {
                code: ErrorCode::Generic,
                reason: "no such slot".into(),
            },
            WireMessage::Error {
                code: ErrorCode::Unauthorized,
                reason: "invalid auth token".into(),
            },
            WireMessage::Error {
                code: ErrorCode::WindowExpired,
                reason: "slot 2 reconnect window expired".into(),
            },
            WireMessage::Error {
                code: ErrorCode::SlotAttached,
                reason: "slot 2 is still attached".into(),
            },
            WireMessage::Goodbye {
                summary: "accepted (no triangle found)".into(),
            },
        ] {
            assert_eq!(roundtrip(&msg), msg);
        }
    }

    #[test]
    fn unknown_error_codes_are_corruption_not_panics() {
        let mut enc = Enc::new();
        enc.u8(WIRE_VERSION);
        enc.u8(0x09); // Error
        enc.u8(200); // unknown code byte
        enc.str("made up");
        let framed = enc.buf;
        let mut buf = Vec::new();
        buf.extend_from_slice(&(framed.len() as u32).to_be_bytes());
        buf.extend_from_slice(&framed);
        buf.extend_from_slice(&checksum_bytes(&framed).to_be_bytes());
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, WireError::Corrupt(_)), "{err}");
    }

    #[test]
    fn sim_messages_roundtrip_with_interned_phases() {
        let mut m = SimMessage::empty();
        m.push_phased(Payload::Edges(vec![e(0, 1)].into()), "induced-sample");
        m.push_phased(Payload::Bit(true), DEFAULT_PHASE);
        let back = roundtrip(&WireMessage::SimResponse {
            id: 8,
            message: m.clone(),
        });
        match back {
            WireMessage::SimResponse { id, message } => {
                assert_eq!(id, 8);
                assert_eq!(message.payloads(), m.payloads());
                assert_eq!(message.phases(), m.phases());
                // Interning must return pointer-identical names on repeat.
                assert!(std::ptr::eq(
                    message.phases()[0],
                    intern_phase("induced-sample")
                ));
            }
            other => panic!("expected SimResponse, got {other:?}"),
        }
        assert_eq!(m.bit_len(16), m.clone().into_owned().bit_len(16));
    }

    #[test]
    fn corruption_is_detected_not_decoded() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &WireMessage::AdoptShared { seed: 4 }).unwrap();
        // Flip one body bit: the checksum must catch it.
        let flip = buf.len() - 9;
        buf[flip] ^= 0x10;
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, WireError::Corrupt(_)), "{err}");
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &WireMessage::Ack).unwrap();
        // Patch the version byte and re-seal the checksum so only the
        // version is wrong.
        buf[4] = WIRE_VERSION + 1;
        let len = u32::from_be_bytes(buf[..4].try_into().unwrap()) as usize;
        let sum = checksum_bytes(&buf[4..4 + len]);
        let at = 4 + len;
        buf[at..at + 8].copy_from_slice(&sum.to_be_bytes());
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert!(
            matches!(err, WireError::Version { got } if got == WIRE_VERSION + 1),
            "{err}"
        );
    }

    #[test]
    fn truncated_streams_and_absurd_lengths_error_cleanly() {
        let mut buf = Vec::new();
        write_frame(
            &mut buf,
            &WireMessage::Goodbye {
                summary: "bye".into(),
            },
        )
        .unwrap();
        buf.truncate(buf.len() - 3);
        assert!(matches!(
            read_frame(&mut Cursor::new(buf)).unwrap_err(),
            WireError::Io(_)
        ));
        let absurd = (MAX_FRAME_BYTES + 1).to_be_bytes().to_vec();
        assert!(matches!(
            read_frame(&mut Cursor::new(absurd)).unwrap_err(),
            WireError::Corrupt(_)
        ));
    }

    /// Builds a correctly framed, correctly checksummed `Response` whose
    /// payload is a hand-written tag-10 bitset body — so the only thing
    /// under test is the bitset decoder's validation, not the checksum.
    fn sealed_bitset_frame(build: impl FnOnce(&mut Enc)) -> Vec<u8> {
        let mut enc = Enc::new();
        enc.u8(WIRE_VERSION);
        enc.u8(0x04); // Response
        enc.u64(1); // correlation id
        enc.u8(10); // EdgeBits payload tag
        build(&mut enc);
        let framed = enc.buf;
        let mut out = Vec::new();
        out.extend_from_slice(&(framed.len() as u32).to_be_bytes());
        out.extend_from_slice(&framed);
        out.extend_from_slice(&checksum_bytes(&framed).to_be_bytes());
        out
    }

    fn expect_bitset_reject(what: &str, build: impl FnOnce(&mut Enc)) {
        let buf = sealed_bitset_frame(build);
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert!(
            matches!(err, WireError::Corrupt(_)),
            "{what}: expected Corrupt, got {err}"
        );
    }

    #[test]
    fn malformed_bitset_bodies_are_rejected_before_allocation() {
        // Vertex count past the cap: rejected before EdgeBitset::new.
        expect_bitset_reject("oversized n", |enc| {
            enc.u32(MAX_BITSET_VERTICES + 1);
            enc.u32(0);
        });
        // Row count the frame cannot possibly hold.
        expect_bitset_reject("rows exceed frame", |enc| {
            enc.u32(1000);
            enc.u32(900);
        });
        // More rows than vertices.
        expect_bitset_reject("rows exceed vertices", |enc| {
            enc.u32(2);
            enc.u32(3);
        });
        // Rows out of ascending order.
        expect_bitset_reject("rows not ascending", |enc| {
            enc.u32(10);
            enc.u32(2);
            for u in [3u32, 2] {
                enc.u32(u);
                enc.u8(0);
                enc.u32(1);
                enc.u32(u + 1);
            }
        });
        // Row index past n.
        expect_bitset_reject("row index out of range", |enc| {
            enc.u32(4);
            enc.u32(1);
            enc.u32(7);
            enc.u8(0);
            enc.u32(1);
            enc.u32(8);
        });
        // Sparse count the frame cannot hold: rejected before the ids
        // would be read (or any buffer allocated).
        expect_bitset_reject("sparse count exceeds frame", |enc| {
            enc.u32(100);
            enc.u32(1);
            enc.u32(0);
            enc.u8(0);
            enc.u32(1_000_000);
        });
        // Sparse ids out of order, at/below the row, or past n.
        expect_bitset_reject("sparse ids not ascending", |enc| {
            enc.u32(10);
            enc.u32(1);
            enc.u32(0);
            enc.u8(0);
            enc.u32(2);
            enc.u32(5);
            enc.u32(3);
        });
        expect_bitset_reject("sparse id at the row index", |enc| {
            enc.u32(10);
            enc.u32(1);
            enc.u32(4);
            enc.u8(0);
            enc.u32(1);
            enc.u32(4);
        });
        expect_bitset_reject("sparse id past n", |enc| {
            enc.u32(10);
            enc.u32(1);
            enc.u32(0);
            enc.u8(0);
            enc.u32(1);
            enc.u32(10);
        });
        // Dense row with the wrong word count (n = 100 needs 2 words).
        expect_bitset_reject("oversized dense word count", |enc| {
            enc.u32(100);
            enc.u32(1);
            enc.u32(0);
            enc.u8(1);
            enc.u32(3);
            for _ in 0..3 {
                enc.u64(2);
            }
        });
        // Dense word count the frame cannot hold.
        expect_bitset_reject("dense words exceed frame", |enc| {
            enc.u32(1 << 19);
            enc.u32(1);
            enc.u32(0);
            enc.u8(1);
            enc.u32((1usize << 19).div_ceil(64) as u32);
        });
        // Trailing bit at position 70 with n = 70: past the vertex space.
        expect_bitset_reject("trailing bits past n", |enc| {
            enc.u32(70);
            enc.u32(1);
            enc.u32(0);
            enc.u8(1);
            enc.u32(2);
            enc.u64(2);
            enc.u64(1 << (70 - 64));
        });
        // Bit at or below the row index breaks canonical order.
        expect_bitset_reject("bit at or below the row", |enc| {
            enc.u32(70);
            enc.u32(1);
            enc.u32(5);
            enc.u8(1);
            enc.u32(2);
            enc.u64(1 << 3);
            enc.u64(0);
        });
        // Encodings of nothing: empty rows may not travel.
        expect_bitset_reject("empty sparse row", |enc| {
            enc.u32(10);
            enc.u32(1);
            enc.u32(0);
            enc.u8(0);
            enc.u32(0);
        });
        expect_bitset_reject("empty dense row", |enc| {
            enc.u32(70);
            enc.u32(1);
            enc.u32(0);
            enc.u8(1);
            enc.u32(2);
            enc.u64(0);
            enc.u64(0);
        });
        // Unknown row kind.
        expect_bitset_reject("unknown row kind", |enc| {
            enc.u32(10);
            enc.u32(1);
            enc.u32(0);
            enc.u8(7);
            enc.u32(1);
            enc.u32(1);
        });
        // Truncated mid-row: the body ends before the declared id.
        expect_bitset_reject("truncated sparse row", |enc| {
            enc.u32(10);
            enc.u32(1);
            enc.u32(0);
            enc.u8(0);
            enc.u32(2);
            enc.u32(3);
        });
    }

    #[test]
    fn checksum_mixes_length_and_content() {
        assert_ne!(checksum_bytes(b""), checksum_bytes(b"\0"));
        assert_ne!(checksum_bytes(b"\0\0"), checksum_bytes(b"\0"));
        assert_ne!(checksum_bytes(b"ab"), checksum_bytes(b"ba"));
        assert_eq!(checksum_bytes(b"triad"), checksum_bytes(b"triad"));
    }
}
