//! The one-way communication model (§4.2.2).
//!
//! Players speak once each, in a fixed order; player `j` sees the
//! messages of players `0..j` before composing its own, and the *last*
//! player outputs the answer without sending. This sits strictly between
//! simultaneous (nobody sees anything) and unrestricted communication,
//! and is the model of the paper's `Ω(n^{1/4})` bound — and, via the
//! standard reduction, of streaming space lower bounds
//! (see [`crate::streaming`]).

use crate::player::{players_from_shares, PlayerState};
use crate::rand::SharedRandomness;
use crate::simultaneous::SimMessage;
use crate::transcript::CommStats;
use triad_graph::Edge;

/// A protocol in the one-way model.
pub trait OneWayProtocol {
    /// What the last player outputs.
    type Output;

    /// The message player `j` sends, given its private input and the
    /// messages of all earlier players. The message is owned
    /// (`'static`): one-way messages outlive their sender's turn, being
    /// relayed down the whole chain.
    fn message(
        &self,
        player: &PlayerState,
        prior: &[SimMessage],
        shared: &SharedRandomness,
    ) -> SimMessage<'static>;

    /// The last player's output, computed from its private input and
    /// every earlier message (it sends nothing).
    fn output(
        &self,
        last: &PlayerState,
        prior: &[SimMessage],
        shared: &SharedRandomness,
    ) -> Self::Output;
}

/// The result of a one-way execution.
#[derive(Debug, Clone)]
pub struct OneWayRun<O> {
    /// The last player's output.
    pub output: O,
    /// Bits of each sent message, in player order (`k − 1` entries).
    pub hop_bits: Vec<u64>,
    /// Aggregate statistics (total = Σ hop bits).
    pub stats: CommStats,
}

/// Runs a one-way protocol over per-player edge shares (≥ 2 players).
///
/// # Panics
///
/// Panics if fewer than two shares are given.
///
/// # Example
///
/// ```
/// use triad_comm::{run_one_way, OneWayProtocol, Payload, PlayerState,
///     SharedRandomness, SimMessage};
/// use triad_graph::{Edge, VertexId};
///
/// /// Forward your edge count; the last player sums.
/// struct CountChain;
/// impl OneWayProtocol for CountChain {
///     type Output = u64;
///     fn message(&self, p: &PlayerState, prior: &[SimMessage],
///                _s: &SharedRandomness) -> SimMessage<'static> {
///         let before = prior.last().and_then(|m| match m.payloads()[0] {
///             Payload::Count(c) => Some(c), _ => None }).unwrap_or(0);
///         SimMessage::of(Payload::Count(before + p.edge_count() as u64))
///     }
///     fn output(&self, last: &PlayerState, prior: &[SimMessage],
///               _s: &SharedRandomness) -> u64 {
///         let before = prior.last().and_then(|m| match m.payloads()[0] {
///             Payload::Count(c) => Some(c), _ => None }).unwrap_or(0);
///         before + last.edge_count() as u64
///     }
/// }
///
/// let e = |a, b| Edge::new(VertexId(a), VertexId(b));
/// let shares = vec![vec![e(0, 1)], vec![e(1, 2), e(2, 3)], vec![e(0, 3)]];
/// let run = run_one_way(&CountChain, 4, &shares, SharedRandomness::new(0));
/// assert_eq!(run.output, 4);
/// assert_eq!(run.hop_bits.len(), 2);
/// ```
pub fn run_one_way<P: OneWayProtocol>(
    protocol: &P,
    n: usize,
    shares: &[Vec<Edge>],
    shared: SharedRandomness,
) -> OneWayRun<P::Output> {
    assert!(
        shares.len() >= 2,
        "one-way model needs at least two players"
    );
    let players = players_from_shares(n, shares);
    let mut messages: Vec<SimMessage<'static>> = Vec::with_capacity(players.len() - 1);
    let mut hop_bits = Vec::with_capacity(players.len() - 1);
    for player in &players[..players.len() - 1] {
        let msg = protocol.message(player, &messages, &shared);
        hop_bits.push(msg.bit_len(n).get());
        messages.push(msg);
    }
    let last = players.last().expect("at least two players");
    let output = protocol.output(last, &messages, &shared);
    let total: u64 = hop_bits.iter().sum();
    OneWayRun {
        output,
        stats: CommStats {
            total_bits: total,
            rounds: hop_bits.len() as u64,
            messages: hop_bits.len() as u64,
            max_player_sent_bits: hop_bits.iter().copied().max().unwrap_or(0),
        },
        hop_bits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Payload;
    use triad_graph::VertexId;

    /// Forward everything you hold plus everything you heard; the last
    /// player reports the total number of distinct edges.
    struct Relay;

    impl OneWayProtocol for Relay {
        type Output = usize;

        fn message(
            &self,
            player: &PlayerState,
            prior: &[SimMessage],
            _shared: &SharedRandomness,
        ) -> SimMessage<'static> {
            let mut edges: Vec<Edge> = player.edges().copied().collect();
            for m in prior {
                edges.extend(m.edges());
            }
            edges.sort_unstable();
            edges.dedup();
            SimMessage::of(Payload::Edges(edges.into()))
        }

        fn output(
            &self,
            last: &PlayerState,
            prior: &[SimMessage],
            _shared: &SharedRandomness,
        ) -> usize {
            let mut edges: Vec<Edge> = last.edges().copied().collect();
            for m in prior {
                edges.extend(m.edges());
            }
            edges.sort_unstable();
            edges.dedup();
            edges.len()
        }
    }

    fn e(a: u32, b: u32) -> Edge {
        Edge::new(VertexId(a), VertexId(b))
    }

    #[test]
    fn relay_counts_union() {
        let shares = vec![vec![e(0, 1)], vec![e(1, 2), e(0, 1)], vec![e(2, 3)]];
        let run = run_one_way(&Relay, 4, &shares, SharedRandomness::new(1));
        assert_eq!(run.output, 3);
        assert_eq!(run.hop_bits.len(), 2);
        // Second hop carries 2 distinct edges: it must cost more than the
        // first hop's single edge.
        assert!(run.hop_bits[1] > run.hop_bits[0]);
        assert_eq!(run.stats.total_bits, run.hop_bits.iter().sum::<u64>());
        assert_eq!(run.stats.messages, 2);
    }

    #[test]
    fn last_player_sends_nothing() {
        let shares = vec![vec![e(0, 1)], vec![]];
        let run = run_one_way(&Relay, 3, &shares, SharedRandomness::new(2));
        assert_eq!(run.hop_bits.len(), 1);
        assert_eq!(run.output, 1);
    }

    #[test]
    #[should_panic(expected = "at least two players")]
    fn rejects_single_player() {
        let _ = run_one_way(&Relay, 3, &[vec![]], SharedRandomness::new(0));
    }
}
