//! The cost-report schema shared by `triad report` and the bench harness.
//!
//! A [`CostReport`] is the structured summary of one protocol execution:
//! the run's parameters, its [`CommStats`] totals, the per-phase and
//! per-player rollups of its [`Transcript`], and (optionally) the paper's
//! predicted cost for those parameters. The CLI emits one report per
//! invocation; the bench harness emits `BENCH_*.json` arrays of them so
//! measured costs stay diffable across revisions. The JSON schema is
//! documented in `docs/OBSERVABILITY.md`.

use crate::transcript::{rollup_array_json, CommStats, Rollup, Transcript};

/// Version stamped into every exported report; bump on schema changes.
pub const REPORT_SCHEMA_VERSION: u32 = 1;

/// The run parameters a report records alongside its measurements.
#[derive(Debug, Clone)]
pub struct ReportParams {
    /// Protocol name as invoked (e.g. `sim-oblivious`).
    pub protocol: String,
    /// Input-generator name (e.g. `planted`).
    pub generator: String,
    /// Vertex count.
    pub n: usize,
    /// Number of players.
    pub k: usize,
    /// Average degree of the generated input.
    pub d: f64,
    /// Farness parameter ε.
    pub eps: f64,
    /// The run's seed.
    pub seed: u64,
}

/// The paper's predicted cost for a run's parameters, next to the
/// measurement.
#[derive(Debug, Clone)]
pub struct PredictedBound {
    /// The asymptotic formula, as written in the paper (e.g. `k·√n`).
    pub formula: String,
    /// The formula evaluated at the run's parameters (no hidden
    /// constants or log factors).
    pub bits: f64,
    /// `measured / predicted` — the constant-plus-polylog factor the
    /// asymptotic notation hides.
    pub ratio: f64,
}

/// A structured cost report for one protocol execution.
///
/// # Example
///
/// ```
/// use triad_comm::{BitCost, CostReport, Direction, ReportParams, Transcript};
///
/// let mut t = Transcript::new(2);
/// t.set_phase("sample");
/// t.record(Some(0), Direction::ToCoordinator, BitCost(12), "edges");
/// let params = ReportParams {
///     protocol: "demo".into(),
///     generator: "planted".into(),
///     n: 64,
///     k: 2,
///     d: 4.0,
///     eps: 0.2,
///     seed: 7,
/// };
/// let report = CostReport::from_transcript(params, "accepted", t.stats(), &t);
/// assert_eq!(report.total_bits, 12);
/// let phase_sum: u64 = report.phases.iter().map(|r| r.bits).sum();
/// assert_eq!(phase_sum, report.total_bits);
/// assert!(report.to_json().contains("\"protocol\": \"demo\""));
/// ```
#[derive(Debug, Clone)]
pub struct CostReport {
    /// Schema version ([`REPORT_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// The run's parameters.
    pub params: ReportParams,
    /// The verdict, as a stable string (`triangle-found` / `accepted`).
    pub outcome: String,
    /// Total bits exchanged.
    pub total_bits: u64,
    /// Communication rounds used.
    pub rounds: u64,
    /// Messages exchanged.
    pub messages: u64,
    /// Largest number of bits any single player sent.
    pub max_player_sent_bits: u64,
    /// Per-phase bit/message rollup; bit totals sum to `total_bits`.
    pub phases: Vec<Rollup>,
    /// Per-player bit/message rollup; bit totals sum to `total_bits`.
    pub per_player: Vec<Rollup>,
    /// The paper's predicted cost, when a formula exists for the protocol.
    pub predicted: Option<PredictedBound>,
}

impl CostReport {
    /// Builds a report from a finished run's statistics and transcript.
    pub fn from_transcript(
        params: ReportParams,
        outcome: &str,
        stats: CommStats,
        transcript: &Transcript,
    ) -> Self {
        CostReport::from_rollups(
            params,
            outcome,
            stats,
            transcript.by_phase(),
            transcript.by_player(),
        )
    }

    /// Builds a report from a tally-recorded run — same fields, same
    /// JSON, no event log needed. A [`Tally`](crate::recorder::Tally)
    /// produces rollups byte-identical to a [`Transcript`] over the same
    /// charges, so reports from either recorder diff clean.
    pub fn from_tally(
        params: ReportParams,
        outcome: &str,
        stats: CommStats,
        tally: &crate::recorder::Tally,
    ) -> Self {
        CostReport::from_rollups(params, outcome, stats, tally.by_phase(), tally.by_player())
    }

    /// Builds a report from pre-computed rollups — the common core of
    /// [`from_transcript`](Self::from_transcript) and
    /// [`from_tally`](Self::from_tally).
    pub fn from_rollups(
        params: ReportParams,
        outcome: &str,
        stats: CommStats,
        phases: Vec<Rollup>,
        per_player: Vec<Rollup>,
    ) -> Self {
        CostReport {
            schema_version: REPORT_SCHEMA_VERSION,
            params,
            outcome: outcome.to_string(),
            total_bits: stats.total_bits,
            rounds: stats.rounds,
            messages: stats.messages,
            max_player_sent_bits: stats.max_player_sent_bits,
            phases,
            per_player,
            predicted: None,
        }
    }

    /// Attaches the paper's predicted cost; the ratio is derived from the
    /// report's measured total.
    #[must_use]
    pub fn with_predicted(mut self, formula: impl Into<String>, bits: f64) -> Self {
        let ratio = if bits > 0.0 {
            self.total_bits as f64 / bits
        } else {
            f64::NAN
        };
        self.predicted = Some(PredictedBound {
            formula: formula.into(),
            bits,
            ratio,
        });
        self
    }

    /// Renders the report as a stable, diffable JSON object.
    pub fn to_json(&self) -> String {
        self.json_indented("")
    }

    fn json_indented(&self, indent: &str) -> String {
        let p = &self.params;
        let mut out = String::new();
        out.push_str(&format!("{indent}{{\n"));
        out.push_str(&format!(
            "{indent}  \"schema_version\": {},\n",
            self.schema_version
        ));
        out.push_str(&format!(
            "{indent}  \"protocol\": \"{}\",\n",
            json_escape(&p.protocol)
        ));
        out.push_str(&format!(
            "{indent}  \"generator\": \"{}\",\n",
            json_escape(&p.generator)
        ));
        out.push_str(&format!("{indent}  \"n\": {},\n", p.n));
        out.push_str(&format!("{indent}  \"k\": {},\n", p.k));
        out.push_str(&format!("{indent}  \"d\": {},\n", json_f64(p.d)));
        out.push_str(&format!("{indent}  \"eps\": {},\n", json_f64(p.eps)));
        out.push_str(&format!("{indent}  \"seed\": {},\n", p.seed));
        out.push_str(&format!(
            "{indent}  \"outcome\": \"{}\",\n",
            json_escape(&self.outcome)
        ));
        out.push_str(&format!("{indent}  \"total_bits\": {},\n", self.total_bits));
        out.push_str(&format!("{indent}  \"rounds\": {},\n", self.rounds));
        out.push_str(&format!("{indent}  \"messages\": {},\n", self.messages));
        out.push_str(&format!(
            "{indent}  \"max_player_sent_bits\": {},\n",
            self.max_player_sent_bits
        ));
        out.push_str(&format!(
            "{indent}  \"phases\": {},\n",
            rollup_array_json(&self.phases, &format!("{indent}  "))
        ));
        out.push_str(&format!(
            "{indent}  \"per_player\": {},\n",
            rollup_array_json(&self.per_player, &format!("{indent}  "))
        ));
        match &self.predicted {
            Some(b) => out.push_str(&format!(
                "{indent}  \"predicted\": {{\"formula\": \"{}\", \"bits\": {}, \"ratio\": {}}}\n",
                json_escape(&b.formula),
                json_f64(b.bits),
                json_f64(b.ratio)
            )),
            None => out.push_str(&format!("{indent}  \"predicted\": null\n")),
        }
        out.push_str(&format!("{indent}}}"));
        out
    }

    /// Renders the report as an aligned human-readable summary.
    pub fn to_text(&self) -> String {
        let p = &self.params;
        let mut out = String::new();
        out.push_str(&format!(
            "{} on {} (n = {}, k = {}, d = {:.2}, eps = {}, seed = {})\n",
            p.protocol, p.generator, p.n, p.k, p.d, p.eps, p.seed
        ));
        out.push_str(&format!("outcome: {}\n", self.outcome));
        out.push_str(&format!(
            "{} bits, {} rounds, {} messages, max player message {} bits\n",
            self.total_bits, self.rounds, self.messages, self.max_player_sent_bits
        ));
        if let Some(b) = &self.predicted {
            out.push_str(&format!(
                "paper bound {} = {:.0} bits (measured/predicted = {:.2})\n",
                b.formula, b.bits, b.ratio
            ));
        }
        out.push_str("per-phase:\n");
        for r in &self.phases {
            out.push_str(&format!(
                "  {:<22} {:>10} bits  {:>8} messages\n",
                r.key, r.bits, r.messages
            ));
        }
        out.push_str("per-player:\n");
        for r in &self.per_player {
            out.push_str(&format!(
                "  {:<22} {:>10} bits  {:>8} messages\n",
                r.key, r.bits, r.messages
            ));
        }
        out
    }
}

/// Writes a slice of reports as one JSON array (the `BENCH_*.json`
/// format).
///
/// # Errors
///
/// Propagates writer failures.
pub fn write_reports_json<W: std::io::Write>(
    reports: &[CostReport],
    mut w: W,
) -> std::io::Result<()> {
    writeln!(w, "[")?;
    for (i, r) in reports.iter().enumerate() {
        let sep = if i + 1 < reports.len() { "," } else { "" };
        writeln!(w, "{}{}", r.json_indented("  "), sep)?;
    }
    writeln!(w, "]")
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::BitCost;
    use crate::transcript::Direction;

    fn demo_report() -> CostReport {
        let mut t = Transcript::new(2);
        t.set_phase("sample");
        t.record(Some(0), Direction::ToCoordinator, BitCost(10), "edges");
        t.set_phase("close");
        t.record(Some(1), Direction::ToCoordinator, BitCost(4), "bit");
        let params = ReportParams {
            protocol: "sim-low".into(),
            generator: "planted".into(),
            n: 100,
            k: 2,
            d: 8.0,
            eps: 0.2,
            seed: 3,
        };
        CostReport::from_transcript(params, "accepted", t.stats(), &t)
    }

    #[test]
    fn rollups_sum_to_total() {
        let r = demo_report();
        assert_eq!(r.total_bits, 14);
        assert_eq!(r.phases.iter().map(|x| x.bits).sum::<u64>(), r.total_bits);
        assert_eq!(
            r.per_player.iter().map(|x| x.bits).sum::<u64>(),
            r.total_bits
        );
    }

    #[test]
    fn tally_report_matches_transcript_report() {
        use crate::recorder::{Recorder, Tally};
        let drive = |r: &mut dyn FnMut(Option<usize>, Direction, BitCost, &'static str)| {
            r(Some(0), Direction::ToCoordinator, BitCost(10), "edges");
            r(Some(1), Direction::ToCoordinator, BitCost(4), "bit");
        };
        let mut t = Transcript::new(2);
        t.set_phase("sample");
        drive(&mut |p, d, b, l| t.record(p, d, b, l));
        let mut y = Tally::with_players(2);
        y.set_phase("sample");
        drive(&mut |p, d, b, l| y.record(p, d, b, l));
        let params = || ReportParams {
            protocol: "sim-low".into(),
            generator: "planted".into(),
            n: 100,
            k: 2,
            d: 8.0,
            eps: 0.2,
            seed: 3,
        };
        let from_t = CostReport::from_transcript(params(), "accepted", t.stats(), &t);
        let from_y = CostReport::from_tally(params(), "accepted", y.stats(), &y);
        assert_eq!(from_t.to_json(), from_y.to_json());
    }

    #[test]
    fn predicted_ratio_uses_measured_total() {
        let r = demo_report().with_predicted("k·√n", 20.0);
        let b = r.predicted.as_ref().unwrap();
        assert_eq!(b.formula, "k·√n");
        assert!((b.ratio - 14.0 / 20.0).abs() < 1e-12);
    }

    #[test]
    fn json_contains_schema_and_parses_as_flat_fields() {
        let r = demo_report().with_predicted("k·√n", 20.0);
        let json = r.to_json();
        for needle in [
            "\"schema_version\": 1",
            "\"protocol\": \"sim-low\"",
            "\"generator\": \"planted\"",
            "\"total_bits\": 14",
            "\"phases\":",
            "\"per_player\":",
            "\"predicted\":",
            "\"formula\": \"k·√n\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in\n{json}");
        }
    }

    #[test]
    fn array_writer_separates_reports() {
        let rs = vec![demo_report(), demo_report()];
        let mut buf = Vec::new();
        write_reports_json(&rs, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.trim_start().starts_with('['));
        assert!(text.trim_end().ends_with(']'));
        assert_eq!(text.matches("\"schema_version\"").count(), 2);
    }

    #[test]
    fn text_rendering_lists_phases() {
        let r = demo_report();
        let text = r.to_text();
        assert!(text.contains("per-phase:"));
        assert!(text.contains("sample"));
        assert!(text.contains("14 bits"));
    }
}
