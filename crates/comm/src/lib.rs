//! # triad-comm
//!
//! The coordinator-model communication substrate for the `triad`
//! reproduction of *"On the Multiparty Communication Complexity of Testing
//! Triangle-Freeness"* (PODC 2017).
//!
//! The paper's model: `k` players hold private edge sets `E_1..E_k`
//! (possibly overlapping) whose union is the input graph; a coordinator
//! with no input exchanges messages with the players over private
//! channels, and the cost of a protocol is the number of bits exchanged.
//! This crate provides:
//!
//! * an exact bit-cost model ([`bits`], [`message::Payload`]),
//! * transcripts and statistics ([`transcript`]),
//! * pluggable cost recorders — the full event log or an allocation-free
//!   counter tally with identical totals ([`recorder`]),
//! * free shared randomness realized as a PRF ([`rand`]),
//! * player state with typed request handlers ([`player`], [`request`]),
//! * runtimes — sequential and one-thread-per-player — under a common
//!   cost-accounting [`runtime::Runtime`], with coordinator and blackboard
//!   charging models,
//! * the one-round simultaneous framework ([`simultaneous`]),
//! * a deterministic parallel execution engine ([`pool`]) for sharding
//!   independent runs (amplification repetitions, seed sweeps) without
//!   perturbing transcripts or cost accounting,
//! * a multi-tenant session scheduler ([`scheduler`]) multiplexing many
//!   independent query sessions over one pool with cross-session work
//!   stealing and per-session serial-prefix early exit.
//!
//! # Example
//!
//! ```
//! use triad_comm::{Runtime, CostModel, SharedRandomness, PlayerRequest, Payload};
//! use triad_graph::{Edge, VertexId};
//!
//! let e = |a, b| Edge::new(VertexId(a), VertexId(b));
//! let shares = vec![vec![e(0, 1)], vec![e(1, 2)]];
//! let mut rt = Runtime::local(3, &shares, SharedRandomness::new(7), CostModel::Coordinator);
//! let resp = rt.request(0, PlayerRequest::HasEdge(e(0, 1)));
//! assert_eq!(resp, Payload::Bit(true));
//! assert!(rt.stats().total_bits > 0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bits;
pub mod daemon;
pub mod fault;
pub mod message;
pub mod oneway;
pub mod player;
pub mod pool;
pub mod rand;
pub mod recorder;
pub mod report;
pub mod request;
pub mod runtime;
pub mod scheduler;
pub mod simultaneous;
pub mod streaming;
pub mod transcript;
pub mod wire;

pub use bits::BitCost;
pub use daemon::{
    ConnectOptions, NetError, PlayerSession, ServeConfig, ServeSummary, SessionOptions,
    TcpCoordinator, ACCEPT_POLL_INTERVAL,
};
pub use fault::{
    checksum_payload, corrupt_payload, run_simultaneous_chaos, ChaosFailure, FaultCounters,
    FaultKind, FaultPlan, FaultRates, FaultStats, FaultyTransport, Framed, SimChaos,
    RETRANSMIT_LABEL,
};
pub use message::{Payload, PayloadEdges, PayloadRepr};
pub use oneway::{run_one_way, OneWayProtocol, OneWayRun};
pub use player::PlayerState;
pub use pool::Pool;
pub use rand::{mix64, SharedRandomness};
pub use recorder::{Recorder, Tally};
pub use report::{
    write_reports_json, CostReport, PredictedBound, ReportParams, REPORT_SCHEMA_VERSION,
};
pub use request::PlayerRequest;
pub use runtime::{
    CostModel, LocalTransport, RunError, RunErrorKind, Runtime, SharedTransport, TcpTransport,
    ThreadedTransport, Transport, TransportError, DEFAULT_NET_TIMEOUT, DEFAULT_RETRY_BUDGET,
};
pub use scheduler::{run_sessions, FnSession, SessionHandle, SessionJob};
pub use simultaneous::{
    run_simultaneous, run_simultaneous_collected, run_simultaneous_prepared,
    run_simultaneous_threaded, SimMessage, SimRun, SimultaneousProtocol,
};
pub use streaming::{
    run_stream, stream_as_one_way, EdgeReservoir, StreamAlgorithm, StreamOneWayRun, StreamRun,
};
pub use transcript::{
    parse_events_csv, parse_events_json, CommStats, Direction, Event, LabelTotals, OwnedEvent,
    ParseError, Rollup, Transcript, DEFAULT_PHASE,
};
pub use wire::{
    ErrorCode, ResumeClaim, Welcome, WireError, WireMessage, MAX_BITSET_VERTICES, MAX_FRAME_BYTES,
    WIRE_VERSION,
};
