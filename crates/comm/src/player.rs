//! A player's private state and its request handlers.

use crate::message::Payload;
use crate::rand::SharedRandomness;
use crate::request::PlayerRequest;
use std::collections::HashSet;
use std::sync::OnceLock;
use triad_graph::kernels::EdgeBitset;
use triad_graph::{Edge, Triangle, VertexId};

/// One player's private input `E_j` with precomputed local adjacency.
///
/// Players never see each other's state; all interaction flows through
/// [`PlayerRequest`]s (unrestricted protocols) or one-shot messages
/// (simultaneous protocols).
#[derive(Debug, Clone)]
pub struct PlayerState {
    id: usize,
    n: usize,
    edges: HashSet<Edge>,
    /// The deduplicated share in sorted order — a stable slice the
    /// simultaneous baselines can borrow into a [`Payload::Edges`]
    /// without cloning (see `docs/RUNTIME.md`).
    share: Vec<Edge>,
    adj: Vec<Vec<VertexId>>,
    /// Vertices with positive local degree, for suspect-set scans.
    occupied: Vec<VertexId>,
    /// The share packed as an [`EdgeBitset`], built lazily on first use
    /// and reused for every repetition — the bitset counterpart of the
    /// borrowable [`share`](Self::share) slice, so dense-representation
    /// baselines stay allocation-free per run too.
    share_bits: OnceLock<EdgeBitset>,
}

impl PlayerState {
    /// Builds player `id`'s state over a graph on `n` vertices from its
    /// edge share (duplicates within the share are collapsed).
    ///
    /// # Panics
    ///
    /// Panics if an edge endpoint is `>= n`.
    pub fn new(id: usize, n: usize, share: &[Edge]) -> Self {
        let mut edges = HashSet::with_capacity(share.len());
        let mut adj = vec![Vec::new(); n];
        for e in share {
            assert!(e.v().index() < n, "edge endpoint out of range");
            if edges.insert(*e) {
                adj[e.u().index()].push(e.v());
                adj[e.v().index()].push(e.u());
            }
        }
        for list in &mut adj {
            list.sort_unstable();
        }
        let occupied = (0..n)
            .filter(|v| !adj[*v].is_empty())
            .map(VertexId::from_index)
            .collect();
        let mut share: Vec<Edge> = edges.iter().copied().collect();
        share.sort_unstable();
        PlayerState {
            id,
            n,
            edges,
            share,
            adj,
            occupied,
            share_bits: OnceLock::new(),
        }
    }

    /// The player's distinct edges, sorted — the borrowable counterpart of
    /// [`edges`](Self::edges) for zero-copy message construction.
    pub fn share(&self) -> &[Edge] {
        &self.share
    }

    /// The share as a packed [`EdgeBitset`], built once per player and
    /// borrowable into a [`crate::Payload::EdgeBits`]
    /// without cloning — the dense-representation twin of
    /// [`share`](Self::share).
    pub fn share_bitset(&self) -> &EdgeBitset {
        self.share_bits
            .get_or_init(|| EdgeBitset::from_edges(self.n, self.share.iter().copied()))
    }

    /// The player's index `j ∈ 0..k`.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The number of vertices in the (global) graph.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of distinct edges this player holds.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The player's local degree `d_j(v)`.
    pub fn local_degree(&self, v: VertexId) -> usize {
        self.adj[v.index()].len()
    }

    /// The player's local neighbors of `v`, sorted.
    pub fn local_neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.adj[v.index()]
    }

    /// The average degree `d̄_j` of the player's own input — the quantity
    /// the degree-oblivious simultaneous protocol keys its guesses on.
    pub fn local_average_degree(&self) -> f64 {
        2.0 * self.edges.len() as f64 / self.n.max(1) as f64
    }

    /// Does the player hold `e`?
    pub fn has_edge(&self, e: Edge) -> bool {
        self.edges.contains(&e)
    }

    /// Iterates the player's distinct edges (arbitrary order).
    pub fn edges(&self) -> impl Iterator<Item = &Edge> {
        self.edges.iter()
    }

    /// Handles one coordinator request. Pure with respect to the player's
    /// state; all randomness comes from the shared string. The response is
    /// owned (`'static`): it crosses the transport boundary, possibly over
    /// a channel to another thread.
    pub fn handle(&self, req: &PlayerRequest, shared: &SharedRandomness) -> Payload<'static> {
        match req {
            PlayerRequest::HasEdge(e) => Payload::Bit(self.has_edge(*e)),
            PlayerRequest::FirstIncidentEdge { v, perm_tag } => {
                let best = self.adj[v.index()]
                    .iter()
                    .map(|u| Edge::new(*v, *u))
                    .min_by_key(|e| shared.edge_rank(*perm_tag, *e));
                Payload::Edge(best)
            }
            PlayerRequest::FirstEdge { perm_tag } => {
                let best = self
                    .edges
                    .iter()
                    .copied()
                    .min_by_key(|e| shared.edge_rank(*perm_tag, *e));
                Payload::Edge(best)
            }
            PlayerRequest::LocalDegree { v } => Payload::Count(self.local_degree(*v) as u64),
            PlayerRequest::LocalEdgeCount => Payload::Count(self.edges.len() as u64),
            PlayerRequest::EdgeCountMsb => {
                let c = self.edges.len() as u64;
                Payload::Count(if c == 0 {
                    0
                } else {
                    64 - c.leading_zeros() as u64
                })
            }
            PlayerRequest::GlobalSampleHit { tag, p } => {
                Payload::Bit(self.edges.iter().any(|e| shared.edge_sampled(*tag, *e, *p)))
            }
            PlayerRequest::DegreeMsb { v } => {
                let d = self.local_degree(*v) as u64;
                Payload::Count(if d == 0 {
                    0
                } else {
                    64 - d.leading_zeros() as u64
                })
            }
            PlayerRequest::DegreePrefix { v, prefix_bits } => {
                let d = self.local_degree(*v) as u64;
                let width: u64 = 64 - u64::from(d.leading_zeros().min(63));
                let truncated = if width > u64::from(*prefix_bits) {
                    let drop = width - u64::from(*prefix_bits);
                    (d >> drop) << drop
                } else {
                    d
                };
                // Cost: the kept prefix plus the exponent (≈ loglog d).
                let cost = u64::from(*prefix_bits) + crate::bits::bits_for_count(width.max(1));
                Payload::Bits(truncated, cost as u32)
            }
            PlayerRequest::SampleHit { v, tag, p } => {
                let hit = self.adj[v.index()]
                    .iter()
                    .any(|u| shared.vertex_sampled(*tag, *u, *p));
                Payload::Bit(hit)
            }
            PlayerRequest::FirstSuspectInBucket {
                bucket,
                k,
                perm_tag,
            } => {
                let best = self
                    .suspects(*bucket, *k)
                    .min_by_key(|v| shared.vertex_rank(*perm_tag, *v));
                Payload::Vertex(best)
            }
            PlayerRequest::SuspectSample {
                bucket,
                k,
                perm_tag,
                count,
            } => {
                let mut ranked: Vec<VertexId> = self.suspects(*bucket, *k).collect();
                ranked.sort_unstable_by_key(|v| shared.vertex_rank(*perm_tag, *v));
                ranked.truncate(*count);
                Payload::Vertices(ranked)
            }
            PlayerRequest::IncidentEdgesSampled { v, tag, p, cap } => {
                let mut out = Vec::new();
                for u in &self.adj[v.index()] {
                    if shared.vertex_sampled(*tag, *u, *p) {
                        out.push(Edge::new(*v, *u));
                        if out.len() >= *cap {
                            break;
                        }
                    }
                }
                Payload::Edges(out.into())
            }
            PlayerRequest::FindClosingTriangle { edges } => {
                Payload::Triangle(self.close_any_vee(edges))
            }
            PlayerRequest::InducedEdges { tag, p, cap } => {
                let mut out = Vec::new();
                for e in &self.edges {
                    if shared.vertex_sampled(*tag, e.u(), *p)
                        && shared.vertex_sampled(*tag, e.v(), *p)
                    {
                        out.push(*e);
                        if out.len() >= *cap {
                            break;
                        }
                    }
                }
                Payload::Edges(out.into())
            }
            PlayerRequest::RsEdges {
                r_tag,
                p_r,
                s_tag,
                p_s,
                cap,
            } => {
                let in_r = |v: VertexId| shared.vertex_sampled(*r_tag, v, *p_r);
                let in_rs = |v: VertexId| in_r(v) || shared.vertex_sampled(*s_tag, v, *p_s);
                let mut out = Vec::new();
                for e in &self.edges {
                    let (u, v) = e.endpoints();
                    if (in_r(u) && in_rs(v)) || (in_r(v) && in_rs(u)) {
                        out.push(*e);
                        if out.len() >= *cap {
                            break;
                        }
                    }
                }
                Payload::Edges(out.into())
            }
        }
    }

    /// The player's suspect set `B̃_i^j = {v : 3^i/k ≤ d_j(v) ≤ 3^{i+1}}`
    /// for bucket `i` (only vertices of positive local degree are
    /// scanned).
    fn suspects(&self, bucket: usize, k: usize) -> impl Iterator<Item = VertexId> + '_ {
        let lo = 3f64.powi(bucket as i32) / k as f64;
        let hi = 3f64.powi(bucket as i32 + 1);
        self.occupied.iter().copied().filter(move |v| {
            let d = self.local_degree(*v) as f64;
            d >= lo && d <= hi
        })
    }

    /// Scans candidate edges for a vee whose closing edge is in this
    /// player's input; returns the completed triangle if found.
    ///
    /// Local computation is free in the model; this is the step that makes
    /// vee-finding sufficient for triangle-finding in the communication
    /// setting (§3.3's key observation).
    pub fn close_any_vee(&self, candidates: &[Edge]) -> Option<Triangle> {
        // Group candidate edges by endpoint, then try to close each pair.
        let mut by_vertex: std::collections::HashMap<VertexId, Vec<VertexId>> =
            std::collections::HashMap::new();
        for e in candidates {
            by_vertex.entry(e.u()).or_default().push(e.v());
            by_vertex.entry(e.v()).or_default().push(e.u());
        }
        for (s, others) in &by_vertex {
            for (i, a) in others.iter().enumerate() {
                for b in &others[i + 1..] {
                    if a != b && *a != *s && *b != *s && self.has_edge(Edge::new(*a, *b)) {
                        return Some(Triangle::new(*s, *a, *b));
                    }
                }
            }
        }
        None
    }
}

/// Builds the `k` player states from a partition's shares.
pub fn players_from_shares(n: usize, shares: &[Vec<Edge>]) -> Vec<PlayerState> {
    shares
        .iter()
        .enumerate()
        .map(|(j, s)| PlayerState::new(j, n, s))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(a: u32, b: u32) -> Edge {
        Edge::new(VertexId(a), VertexId(b))
    }

    fn player() -> PlayerState {
        PlayerState::new(0, 6, &[e(0, 1), e(1, 2), e(0, 2), e(3, 4), e(0, 1)])
    }

    #[test]
    fn dedups_and_indexes() {
        let p = player();
        assert_eq!(p.edge_count(), 4);
        assert_eq!(p.local_degree(VertexId(0)), 2);
        assert_eq!(p.local_degree(VertexId(5)), 0);
        assert_eq!(p.local_neighbors(VertexId(1)), &[VertexId(0), VertexId(2)]);
        assert!(p.has_edge(e(1, 0)));
        assert!(!p.has_edge(e(0, 3)));
        assert_eq!(p.id(), 0);
        assert_eq!(p.n(), 6);
        assert!((p.local_average_degree() - 8.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn share_bitset_is_the_share_built_once() {
        let p = player();
        assert_eq!(p.share_bitset().to_edges(), p.share());
        assert_eq!(p.share_bitset().len(), p.edge_count());
        assert!(
            std::ptr::eq(p.share_bitset(), p.share_bitset()),
            "the bitset is cached, not rebuilt"
        );
    }

    #[test]
    fn handle_has_edge_and_degrees() {
        let p = player();
        let s = SharedRandomness::new(1);
        assert_eq!(
            p.handle(&PlayerRequest::HasEdge(e(0, 1)), &s),
            Payload::Bit(true)
        );
        assert_eq!(
            p.handle(&PlayerRequest::LocalDegree { v: VertexId(0) }, &s),
            Payload::Count(2)
        );
        assert_eq!(
            p.handle(&PlayerRequest::LocalEdgeCount, &s),
            Payload::Count(4)
        );
        // degree 2 ⇒ MSB index+1 = 2
        assert_eq!(
            p.handle(&PlayerRequest::DegreeMsb { v: VertexId(0) }, &s),
            Payload::Count(2)
        );
        assert_eq!(
            p.handle(&PlayerRequest::DegreeMsb { v: VertexId(5) }, &s),
            Payload::Count(0)
        );
    }

    #[test]
    fn degree_prefix_truncates() {
        // Degree 13 = 0b1101; keep top 2 bits → 0b1100 = 12.
        let edges: Vec<Edge> = (1..=13).map(|i| e(0, i)).collect();
        let p = PlayerState::new(0, 20, &edges);
        let s = SharedRandomness::new(0);
        match p.handle(
            &PlayerRequest::DegreePrefix {
                v: VertexId(0),
                prefix_bits: 2,
            },
            &s,
        ) {
            Payload::Bits(v, _) => assert_eq!(v, 12),
            other => panic!("unexpected payload {other:?}"),
        }
    }

    #[test]
    fn first_incident_edge_is_min_rank_and_consistent() {
        let p = player();
        let s = SharedRandomness::new(99);
        let r1 = p.handle(
            &PlayerRequest::FirstIncidentEdge {
                v: VertexId(0),
                perm_tag: 5,
            },
            &s,
        );
        let r2 = p.handle(
            &PlayerRequest::FirstIncidentEdge {
                v: VertexId(0),
                perm_tag: 5,
            },
            &s,
        );
        assert_eq!(r1, r2);
        match r1 {
            Payload::Edge(Some(edge)) => assert!(edge.is_incident_to(VertexId(0))),
            other => panic!("unexpected {other:?}"),
        }
        // vertex with no incident edges → None
        assert_eq!(
            p.handle(
                &PlayerRequest::FirstIncidentEdge {
                    v: VertexId(5),
                    perm_tag: 5
                },
                &s
            ),
            Payload::Edge(None)
        );
    }

    #[test]
    fn sample_hit_respects_probability_extremes() {
        let p = player();
        let s = SharedRandomness::new(2);
        assert_eq!(
            p.handle(
                &PlayerRequest::SampleHit {
                    v: VertexId(0),
                    tag: 1,
                    p: 1.0
                },
                &s
            ),
            Payload::Bit(true)
        );
        assert_eq!(
            p.handle(
                &PlayerRequest::SampleHit {
                    v: VertexId(0),
                    tag: 1,
                    p: 0.0
                },
                &s
            ),
            Payload::Bit(false)
        );
        // isolated vertex never hits
        assert_eq!(
            p.handle(
                &PlayerRequest::SampleHit {
                    v: VertexId(5),
                    tag: 1,
                    p: 1.0
                },
                &s
            ),
            Payload::Bit(false)
        );
    }

    #[test]
    fn suspect_set_respects_local_degree_window() {
        // Player sees only 1 of hub's 9 edges: hub is suspect for bucket 2
        // ([9,27)) only because 9/k ≤ 1 when k ≥ 9.
        let edges: Vec<Edge> = vec![e(0, 1)];
        let p = PlayerState::new(0, 30, &edges);
        let s = SharedRandomness::new(1);
        let with_k9 = p.handle(
            &PlayerRequest::FirstSuspectInBucket {
                bucket: 2,
                k: 9,
                perm_tag: 0,
            },
            &s,
        );
        assert!(matches!(with_k9, Payload::Vertex(Some(_))));
        let with_k2 = p.handle(
            &PlayerRequest::FirstSuspectInBucket {
                bucket: 2,
                k: 2,
                perm_tag: 0,
            },
            &s,
        );
        assert_eq!(with_k2, Payload::Vertex(None));
    }

    #[test]
    fn incident_edges_sampled_caps() {
        let edges: Vec<Edge> = (1..=20).map(|i| e(0, i)).collect();
        let p = PlayerState::new(0, 30, &edges);
        let s = SharedRandomness::new(8);
        match p.handle(
            &PlayerRequest::IncidentEdgesSampled {
                v: VertexId(0),
                tag: 3,
                p: 1.0,
                cap: 5,
            },
            &s,
        ) {
            Payload::Edges(es) => assert_eq!(es.len(), 5),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn close_any_vee_finds_triangle() {
        // Player holds the closing edge (1,2); candidates form a vee at 0.
        let p = PlayerState::new(0, 4, &[e(1, 2)]);
        let found = p.close_any_vee(&[e(0, 1), e(0, 2)]);
        assert_eq!(
            found,
            Some(Triangle::new(VertexId(0), VertexId(1), VertexId(2)))
        );
        assert_eq!(p.close_any_vee(&[e(0, 1), e(0, 3)]), None);
        assert_eq!(p.close_any_vee(&[]), None);
    }

    #[test]
    fn induced_and_rs_handlers_filter() {
        let p = player();
        let s = SharedRandomness::new(4);
        match p.handle(
            &PlayerRequest::InducedEdges {
                tag: 0,
                p: 1.0,
                cap: 100,
            },
            &s,
        ) {
            Payload::Edges(es) => assert_eq!(es.len(), 4),
            other => panic!("unexpected {other:?}"),
        }
        match p.handle(
            &PlayerRequest::InducedEdges {
                tag: 0,
                p: 0.0,
                cap: 100,
            },
            &s,
        ) {
            Payload::Edges(es) => assert!(es.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
        // R = everything ⇒ all edges qualify.
        match p.handle(
            &PlayerRequest::RsEdges {
                r_tag: 1,
                p_r: 1.0,
                s_tag: 2,
                p_s: 0.0,
                cap: 100,
            },
            &s,
        ) {
            Payload::Edges(es) => assert_eq!(es.len(), 4),
            other => panic!("unexpected {other:?}"),
        }
        // R = nothing ⇒ no edge has an R endpoint.
        match p.handle(
            &PlayerRequest::RsEdges {
                r_tag: 1,
                p_r: 0.0,
                s_tag: 2,
                p_s: 1.0,
                cap: 100,
            },
            &s,
        ) {
            Payload::Edges(es) => assert!(es.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn players_from_shares_builds_all() {
        let shares = vec![vec![e(0, 1)], vec![e(1, 2), e(2, 3)]];
        let ps = players_from_shares(5, &shares);
        assert_eq!(ps.len(), 2);
        assert_eq!(ps[0].id(), 0);
        assert_eq!(ps[1].edge_count(), 2);
    }
}
