//! Pluggable cost recorders: full-fidelity [`Transcript`] vs the
//! zero-allocation [`Tally`].
//!
//! Every runtime charge funnels through a [`Recorder`]. The
//! [`Transcript`] implementation keeps the ordered per-event log behind
//! `triad report`, transcript export, and the differential tests; the
//! [`Tally`] implementation accumulates only the counters the reports
//! need — total bits, per-phase / per-player / per-round / per-direction
//! / per-label sums — in flat fixed buckets, with **zero heap
//! allocation per recorded event**. Amplified sweeps and benches default
//! to `Tally`; observability paths keep `Transcript`.
//!
//! The two recorders are interchangeable by construction: for any event
//! sequence, `Tally`'s totals, statistics, and rollups are byte-identical
//! to the `Transcript` rollups over the same events (pinned by the unit
//! tests here, `tests/recorder_differential.rs`, and a proptest). See
//! `docs/RUNTIME.md`.

use crate::bits::BitCost;
use crate::transcript::{CommStats, Direction, LabelTotals, Rollup, Transcript, DEFAULT_PHASE};

/// A sink for per-message cost charges.
///
/// The contract mirrors [`Transcript`]'s accounting exactly — same
/// per-player attribution (only `ToCoordinator` messages with a player
/// index inside the initial player range count toward
/// `max_player_sent_bits`), same round numbering (`stats().rounds` is
/// `round() + 1`), and the same pristine-absorb no-op that keeps
/// [`Recorder::absorb`] associative for the deterministic parallel
/// engine's ordered reduction.
pub trait Recorder: Send + 'static {
    /// An empty recorder for `k` players.
    fn with_players(k: usize) -> Self
    where
        Self: Sized;

    /// Records one message under the current phase.
    fn record(
        &mut self,
        player: Option<usize>,
        direction: Direction,
        bits: BitCost,
        label: &'static str,
    );

    /// Advances to the next communication round.
    fn next_round(&mut self);

    /// Current round index.
    fn round(&self) -> u64;

    /// Sets the phase stamped onto subsequently recorded messages.
    fn set_phase(&mut self, phase: &'static str);

    /// The phase currently being stamped onto recorded messages.
    fn current_phase(&self) -> &'static str;

    /// Total bits across all messages.
    fn total_bits(&self) -> BitCost;

    /// Aggregated statistics.
    fn stats(&self) -> CommStats;

    /// Appends another recorder's charges as later rounds of this one
    /// (the accounting behind repetition wrappers). Absorbing a pristine
    /// recorder must be a no-op so the operation stays associative.
    fn absorb(&mut self, other: &Self);

    /// Hints that about `additional` further messages will be recorded.
    /// A no-op for counter recorders; [`Transcript`] pre-reserves its
    /// event log.
    fn reserve_messages(&mut self, additional: usize) {
        let _ = additional;
    }

    /// Total bits recorded under `label` (0 for unseen labels).
    fn bits_for_label(&self, label: &str) -> u64;

    /// Bits spent on fault recovery — retransmitted requests, duplicate
    /// deliveries, and garbled responses — i.e. the rollup of the
    /// [`crate::fault::RETRANSMIT_LABEL`] label. Zero on fault-free
    /// runs.
    fn retransmit_bits(&self) -> u64 {
        self.bits_for_label(crate::fault::RETRANSMIT_LABEL)
    }
}

impl Recorder for Transcript {
    fn with_players(k: usize) -> Self {
        Transcript::new(k)
    }

    fn record(
        &mut self,
        player: Option<usize>,
        direction: Direction,
        bits: BitCost,
        label: &'static str,
    ) {
        Transcript::record(self, player, direction, bits, label);
    }

    fn next_round(&mut self) {
        Transcript::next_round(self);
    }

    fn round(&self) -> u64 {
        Transcript::round(self)
    }

    fn set_phase(&mut self, phase: &'static str) {
        Transcript::set_phase(self, phase);
    }

    fn current_phase(&self) -> &'static str {
        Transcript::current_phase(self)
    }

    fn total_bits(&self) -> BitCost {
        Transcript::total_bits(self)
    }

    fn stats(&self) -> CommStats {
        Transcript::stats(self)
    }

    fn absorb(&mut self, other: &Self) {
        Transcript::absorb(self, other);
    }

    fn reserve_messages(&mut self, additional: usize) {
        Transcript::reserve_events(self, additional);
    }

    fn bits_for_label(&self, label: &str) -> u64 {
        Transcript::bits_for_label(self, label)
    }
}

/// Flat counter buckets for one aggregation key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct Bucket {
    bits: u64,
    messages: u64,
}

impl Bucket {
    #[inline]
    fn add(&mut self, bits: u64) {
        let mut total = BitCost(self.bits);
        total.accumulate(BitCost(bits));
        self.bits = total.get();
        self.messages += 1;
    }

    #[inline]
    fn merge(&mut self, other: Bucket) {
        let mut total = BitCost(self.bits);
        total.accumulate(BitCost(other.bits));
        self.bits = total.get();
        self.messages += other.messages;
    }
}

/// The counters-only recorder: every aggregate a [`CostReport`] or
/// rollup export needs, with no per-event allocation.
///
/// Phase and label buckets are linear-scanned `&'static str` tables —
/// protocols use a handful of each, so a scan beats hashing — and
/// per-player / per-round buckets are dense index-addressed vectors that
/// grow (amortized, outside the hot loop) to the largest index seen.
///
/// [`CostReport`]: crate::report::CostReport
///
/// # Example
///
/// ```
/// use triad_comm::{BitCost, Direction, Recorder, Tally};
///
/// let mut tally = Tally::with_players(2);
/// tally.set_phase("sample");
/// tally.record(Some(0), Direction::ToCoordinator, BitCost(10), "edges");
/// assert_eq!(tally.total_bits(), BitCost(10));
/// assert_eq!(tally.by_phase()[0].key, "sample");
/// assert_eq!(tally.stats().max_player_sent_bits, 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tally {
    total: BitCost,
    round: u64,
    messages: u64,
    per_player_sent: Vec<u64>,
    current_phase: &'static str,
    by_phase: Vec<(&'static str, Bucket)>,
    by_label: Vec<(&'static str, Bucket)>,
    by_player: Vec<Bucket>,
    broadcast: Bucket,
    by_round: Vec<Bucket>,
    by_direction: [Bucket; 3],
}

impl Default for Tally {
    fn default() -> Self {
        Tally::with_players(0)
    }
}

impl Tally {
    /// Bits each player sent to the coordinator (index-capped at the
    /// player count given to [`Recorder::with_players`], exactly like
    /// [`Transcript::per_player_sent`]).
    pub fn per_player_sent(&self) -> &[u64] {
        &self.per_player_sent
    }

    /// Total bits charged to messages carrying the given label.
    pub fn bits_for_label(&self, label: &str) -> u64 {
        self.by_label
            .iter()
            .find(|(l, _)| *l == label)
            .map(|(_, b)| b.bits)
            .unwrap_or(0)
    }

    /// Total bits charged under the given phase.
    pub fn bits_for_phase(&self, phase: &str) -> u64 {
        self.by_phase
            .iter()
            .find(|(p, _)| *p == phase)
            .map(|(_, b)| b.bits)
            .unwrap_or(0)
    }

    /// Per-label totals, sorted by descending bits — identical to
    /// [`Transcript::breakdown`] over the same events.
    pub fn breakdown(&self) -> Vec<LabelTotals> {
        let mut out: Vec<LabelTotals> = self
            .by_label
            .iter()
            .map(|(label, b)| LabelTotals {
                label,
                bits: b.bits,
                messages: b.messages,
            })
            .collect();
        out.sort_by(|a, b| b.bits.cmp(&a.bits).then(a.label.cmp(b.label)));
        out
    }

    /// Bits and messages per phase, sorted by descending bits then key —
    /// identical to [`Transcript::by_phase`] over the same events.
    pub fn by_phase(&self) -> Vec<Rollup> {
        let mut out: Vec<Rollup> = self
            .by_phase
            .iter()
            .map(|(phase, b)| Rollup {
                key: (*phase).to_string(),
                bits: b.bits,
                messages: b.messages,
            })
            .collect();
        out.sort_by(|a, b| b.bits.cmp(&a.bits).then(a.key.cmp(&b.key)));
        out
    }

    /// Bits and messages per involved party (`player-j` in index order,
    /// then `broadcast`) — identical to [`Transcript::by_player`].
    pub fn by_player(&self) -> Vec<Rollup> {
        let mut out: Vec<Rollup> = self
            .by_player
            .iter()
            .enumerate()
            .filter(|(_, b)| b.messages > 0)
            .map(|(j, b)| Rollup {
                key: format!("player-{j}"),
                bits: b.bits,
                messages: b.messages,
            })
            .collect();
        if self.broadcast.messages > 0 {
            out.push(Rollup {
                key: "broadcast".to_string(),
                bits: self.broadcast.bits,
                messages: self.broadcast.messages,
            });
        }
        out
    }

    /// Bits and messages per round, in round order — identical to
    /// [`Transcript::by_round`].
    pub fn by_round(&self) -> Vec<Rollup> {
        self.by_round
            .iter()
            .enumerate()
            .filter(|(_, b)| b.messages > 0)
            .map(|(r, b)| Rollup {
                key: format!("round-{r}"),
                bits: b.bits,
                messages: b.messages,
            })
            .collect()
    }

    /// Bits and messages per [`Direction`], in declaration order —
    /// identical to [`Transcript::by_direction`].
    pub fn by_direction(&self) -> Vec<Rollup> {
        [
            Direction::ToPlayer,
            Direction::ToCoordinator,
            Direction::Broadcast,
        ]
        .into_iter()
        .filter(|d| self.by_direction[*d as u8 as usize].messages > 0)
        .map(|d| {
            let b = self.by_direction[d as u8 as usize];
            Rollup {
                key: d.as_str().to_string(),
                bits: b.bits,
                messages: b.messages,
            }
        })
        .collect()
    }

    #[inline]
    fn phase_bucket(&mut self) -> &mut Bucket {
        let phase = self.current_phase;
        // Linear probe over a handful of phases; hit is almost always
        // the most recent entry's neighborhood.
        match self.by_phase.iter().position(|(p, _)| *p == phase) {
            Some(i) => &mut self.by_phase[i].1,
            None => {
                self.by_phase.push((phase, Bucket::default()));
                &mut self.by_phase.last_mut().expect("just pushed").1
            }
        }
    }

    #[inline]
    fn label_bucket(&mut self, label: &'static str) -> &mut Bucket {
        match self.by_label.iter().position(|(l, _)| *l == label) {
            Some(i) => &mut self.by_label[i].1,
            None => {
                self.by_label.push((label, Bucket::default()));
                &mut self.by_label.last_mut().expect("just pushed").1
            }
        }
    }

    /// True when no message has been recorded and no round advanced —
    /// the same pristine predicate [`Transcript::absorb`] uses.
    fn is_pristine(&self) -> bool {
        self.messages == 0 && self.round == 0
    }
}

impl Tally {
    /// Replays a full transcript's events into a fresh tally — the
    /// faithful down-conversion: every rollup of the result equals the
    /// transcript's rollup over the same events.
    pub fn from_transcript(t: &Transcript) -> Tally {
        let mut tally = Tally::with_players(t.per_player_sent().len());
        for ev in t.events() {
            while Recorder::round(&tally) < ev.round {
                tally.next_round();
            }
            tally.set_phase(ev.phase);
            tally.record(ev.player, ev.direction, BitCost(ev.bits), ev.label);
        }
        while Recorder::round(&tally) < Recorder::round(t) {
            tally.next_round();
        }
        tally.set_phase(t.current_phase());
        tally
    }
}

impl Recorder for Tally {
    fn with_players(k: usize) -> Self {
        Tally {
            total: BitCost::ZERO,
            round: 0,
            messages: 0,
            per_player_sent: vec![0; k],
            current_phase: DEFAULT_PHASE,
            by_phase: Vec::new(),
            by_label: Vec::new(),
            by_player: Vec::new(),
            broadcast: Bucket::default(),
            by_round: Vec::new(),
            by_direction: [Bucket::default(); 3],
        }
    }

    fn record(
        &mut self,
        player: Option<usize>,
        direction: Direction,
        bits: BitCost,
        label: &'static str,
    ) {
        if direction == Direction::ToCoordinator {
            if let Some(slot) = player.and_then(|j| self.per_player_sent.get_mut(j)) {
                *slot += bits.get();
            }
        }
        self.total.accumulate(bits);
        self.messages += 1;
        let raw = bits.get();
        self.phase_bucket().add(raw);
        self.label_bucket(label).add(raw);
        match player {
            Some(j) => {
                if j >= self.by_player.len() {
                    self.by_player.resize(j + 1, Bucket::default());
                }
                self.by_player[j].add(raw);
            }
            None => self.broadcast.add(raw),
        }
        let r = self.round as usize;
        if r >= self.by_round.len() {
            self.by_round.resize(r + 1, Bucket::default());
        }
        self.by_round[r].add(raw);
        self.by_direction[direction as u8 as usize].add(raw);
    }

    fn next_round(&mut self) {
        self.round += 1;
    }

    fn round(&self) -> u64 {
        self.round
    }

    fn set_phase(&mut self, phase: &'static str) {
        self.current_phase = phase;
    }

    fn current_phase(&self) -> &'static str {
        self.current_phase
    }

    fn total_bits(&self) -> BitCost {
        self.total
    }

    fn stats(&self) -> CommStats {
        CommStats {
            total_bits: self.total.get(),
            rounds: self.round + 1,
            messages: self.messages,
            max_player_sent_bits: self.per_player_sent.iter().copied().max().unwrap_or(0),
        }
    }

    fn bits_for_label(&self, label: &str) -> u64 {
        Tally::bits_for_label(self, label)
    }

    fn absorb(&mut self, other: &Self) {
        if other.is_pristine() {
            // Mirror Transcript::absorb: a pristine operand only widens
            // the per-player table, so the operation stays associative.
            if self.per_player_sent.len() < other.per_player_sent.len() {
                self.per_player_sent.resize(other.per_player_sent.len(), 0);
            }
            return;
        }
        let offset = if self.is_pristine() {
            0
        } else {
            self.round + 1
        };
        if !other.by_round.is_empty() {
            let needed = offset as usize + other.by_round.len();
            if needed > self.by_round.len() {
                self.by_round.resize(needed, Bucket::default());
            }
            for (i, b) in other.by_round.iter().enumerate() {
                self.by_round[offset as usize + i].merge(*b);
            }
        }
        self.round = offset + other.round;
        self.total.accumulate(other.total);
        self.messages += other.messages;
        if self.per_player_sent.len() < other.per_player_sent.len() {
            self.per_player_sent.resize(other.per_player_sent.len(), 0);
        }
        for (slot, sent) in self.per_player_sent.iter_mut().zip(&other.per_player_sent) {
            *slot += sent;
        }
        for (phase, b) in &other.by_phase {
            self.current_phase = phase;
            self.phase_bucket().merge(*b);
        }
        self.current_phase = other.current_phase;
        for (label, b) in &other.by_label {
            self.label_bucket(label).merge(*b);
        }
        if other.by_player.len() > self.by_player.len() {
            self.by_player
                .resize(other.by_player.len(), Bucket::default());
        }
        for (slot, b) in self.by_player.iter_mut().zip(&other.by_player) {
            slot.merge(*b);
        }
        self.broadcast.merge(other.broadcast);
        for (slot, b) in self.by_direction.iter_mut().zip(&other.by_direction) {
            slot.merge(*b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives both recorders through the same script and asserts every
    /// aggregate matches.
    fn assert_matches(t: &Transcript, y: &Tally) {
        assert_eq!(y.total_bits(), t.total_bits());
        assert_eq!(y.stats(), t.stats());
        assert_eq!(Recorder::round(y), Recorder::round(t));
        assert_eq!(y.per_player_sent(), t.per_player_sent());
        assert_eq!(y.by_phase(), t.by_phase());
        assert_eq!(y.by_player(), t.by_player());
        assert_eq!(y.by_round(), t.by_round());
        assert_eq!(y.by_direction(), t.by_direction());
        assert_eq!(y.breakdown(), t.breakdown());
    }

    fn script<R: Recorder>(r: &mut R) {
        r.set_phase("sample");
        r.record(Some(0), Direction::ToPlayer, BitCost(4), "req");
        r.record(Some(0), Direction::ToCoordinator, BitCost(9), "resp");
        r.next_round();
        r.set_phase("verify");
        r.record(Some(2), Direction::ToCoordinator, BitCost(6), "resp");
        r.record(None, Direction::Broadcast, BitCost(11), "post");
        // An out-of-range player index: counted in the by-player rollup
        // but (like Transcript) not in per_player_sent.
        r.record(Some(7), Direction::ToCoordinator, BitCost(2), "stray");
    }

    fn pair() -> (Transcript, Tally) {
        let mut t = Transcript::with_players(3);
        let mut y = Tally::with_players(3);
        script(&mut t);
        script(&mut y);
        (t, y)
    }

    #[test]
    fn tally_matches_transcript_rollups() {
        let (t, y) = pair();
        assert_matches(&t, &y);
        assert_eq!(y.bits_for_label("resp"), t.bits_for_label("resp"));
        assert_eq!(y.bits_for_label("absent"), 0);
        assert_eq!(y.bits_for_phase("sample"), t.bits_for_phase("sample"));
        assert_eq!(y.bits_for_phase("absent"), 0);
    }

    #[test]
    fn absorb_matches_transcript_absorb() {
        let (mut t, mut y) = pair();
        let (t2, y2) = pair();
        t.absorb(&t2);
        y.absorb(&y2);
        assert_matches(&t, &y);
        // Absorbing into pristine keeps round numbering, as Transcript does.
        let mut t0 = Transcript::with_players(0);
        let mut y0 = Tally::with_players(0);
        t0.absorb(&t2);
        y0.absorb(&y2);
        assert_matches(&t0, &y0);
    }

    #[test]
    fn pristine_absorb_is_a_no_op() {
        let (mut t, mut y) = pair();
        t.absorb(&Transcript::with_players(5));
        y.absorb(&Tally::with_players(5));
        assert_matches(&t, &y);
        assert_eq!(y.per_player_sent().len(), 5, "player table widened");
    }

    #[test]
    fn empty_rollups_are_empty() {
        let y = Tally::with_players(2);
        assert!(y.by_phase().is_empty());
        assert!(y.by_player().is_empty());
        assert!(y.by_round().is_empty());
        assert!(y.by_direction().is_empty());
        assert!(y.breakdown().is_empty());
        assert_eq!(y.stats().rounds, 1, "round 0 exists even when silent");
    }

    #[test]
    fn from_transcript_replays_faithfully() {
        let (t, y) = pair();
        let replayed = Tally::from_transcript(&t);
        assert_eq!(replayed, y);
        assert_matches(&t, &replayed);
    }

    #[test]
    fn phase_scoping_matches_default() {
        let mut y = Tally::with_players(1);
        y.record(Some(0), Direction::ToPlayer, BitCost(1), "x");
        assert_eq!(y.current_phase(), DEFAULT_PHASE);
        y.set_phase("p");
        assert_eq!(y.current_phase(), "p");
        y.record(Some(0), Direction::ToPlayer, BitCost(2), "x");
        assert_eq!(y.bits_for_phase(DEFAULT_PHASE), 1);
        assert_eq!(y.bits_for_phase("p"), 2);
    }
}
