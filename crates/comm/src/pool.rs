//! Deterministic parallel execution engine.
//!
//! Amplification repetitions, per-seed trials and experiment grids are
//! embarrassingly parallel: public-coin runs with distinct seeds are
//! independent, so they can execute on worker threads in any order. What
//! must **not** change with the thread count is the output — the
//! bit-level transcripts, `CommStats` totals and exported JSON this
//! repository treats as ground truth. This module provides a scoped
//! thread pool whose combinators guarantee exactly that:
//!
//! * work items are identified by their index, never by completion time;
//! * results are reduced **in index order**, so any order-sensitive fold
//!   (transcript absorption, stats merging, JSON emission) sees the same
//!   sequence a serial loop would;
//! * early-exit folds ([`Pool::ordered_map_until`]) return precisely the
//!   prefix a serial loop would have computed — items speculatively
//!   executed past the stopping point are discarded, so cost accounting
//!   charges only the work a serial run would have performed.
//!
//! The determinism contract and sizing rules are documented in
//! `docs/PARALLELISM.md`; the differential test suite
//! (`tests/parallel_equivalence.rs`) enforces byte-identical output
//! across thread counts.
//!
//! # Sizing
//!
//! [`Pool::current`] resolves the thread count from, in order: the
//! process-wide override set by [`set_threads`] (the CLI's `--threads`
//! flag), the `TRIAD_THREADS` environment variable, and
//! [`std::thread::available_parallelism`]. A pool of one thread runs
//! every combinator inline on the caller's thread — that *is* the serial
//! path, with zero spawn overhead.
//!
//! # Example
//!
//! ```
//! use triad_comm::pool::Pool;
//!
//! let serial: Vec<u64> = (0..10u64).map(|i| i * i).collect();
//! let parallel = Pool::new(4).ordered_map(10, |i| (i as u64) * (i as u64));
//! assert_eq!(parallel, serial);
//! ```

use crossbeam::channel::unbounded;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide thread-count override (0 = unset). Set once at startup
/// by the CLI's `--threads` flag; read by [`Pool::current`].
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide worker thread count used by [`Pool::current`]
/// (the `--threads N` CLI flag). Values are clamped to at least 1.
/// Intended to be called once at process startup, before any pool is
/// created; explicit [`Pool::new`] pools are unaffected.
pub fn set_threads(threads: usize) {
    THREAD_OVERRIDE.store(threads.max(1), Ordering::SeqCst);
}

/// Resolves the configured worker thread count: the [`set_threads`]
/// override if set, else a positive integer `TRIAD_THREADS` environment
/// variable, else [`std::thread::available_parallelism`] (1 when even
/// that is unavailable).
pub fn configured_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    if let Ok(raw) = std::env::var("TRIAD_THREADS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// A scoped worker pool with deterministic, index-ordered reduction.
///
/// The pool owns no threads between calls: each combinator spawns scoped
/// workers (crossbeam scoped threads over crossbeam channels) and joins
/// them before returning, so borrowing inputs from the caller's stack is
/// free and no shutdown protocol exists to get wrong.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool of exactly `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Pool {
        Pool {
            threads: threads.max(1),
        }
    }

    /// The single-threaded pool — the serial reference path.
    pub fn serial() -> Pool {
        Pool::new(1)
    }

    /// The pool sized by the process configuration (see
    /// [`configured_threads`]).
    pub fn current() -> Pool {
        Pool::new(configured_threads())
    }

    /// A pool of `requested` workers clamped to the machine's
    /// [`std::thread::available_parallelism`]. Oversubscribing a scoped
    /// pool never helps CPU-bound work — extra workers just contend for
    /// the same cores and the context switches show up as negative
    /// scaling in throughput benchmarks — so saturation sweeps size their
    /// pools through this instead of [`Pool::new`].
    pub fn clamped(requested: usize) -> Pool {
        let hw = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        Pool::new(requested.min(hw))
    }

    /// Number of worker threads this pool uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Computes `f(0), …, f(n-1)` on the pool's workers and returns the
    /// results in index order — byte-identical to the serial
    /// `(0..n).map(f).collect()` regardless of thread count or worker
    /// interleaving.
    pub fn ordered_map<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.ordered_map_until(n, f, |_| false)
    }

    /// Ordered map with serial early-exit semantics: returns the results
    /// for indices `0..=s` where `s` is the smallest index whose result
    /// satisfies `stop` (all `n` results when none does) — exactly the
    /// prefix a serial loop with `break`-on-`stop` would have computed.
    ///
    /// Workers may speculatively execute items past the eventual stopping
    /// point; those results are discarded, never reduced, so order-
    /// and cost-sensitive folds over the returned prefix match the
    /// serial path bit for bit.
    ///
    /// A worker panic propagates to the caller when the scope joins, as
    /// it would in a serial loop.
    pub fn ordered_map_until<T, F, S>(&self, n: usize, f: F, stop: S) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
        S: Fn(&T) -> bool + Sync,
    {
        if self.threads == 1 || n <= 1 {
            // The serial path: a plain loop with early exit.
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                let r = f(i);
                let done = stop(&r);
                out.push(r);
                if done {
                    break;
                }
            }
            return out;
        }
        // Claim indices from a shared counter; workers skip (and stop
        // claiming) once a stopping index at or below their next claim is
        // known. `cutoff` only ever decreases, and only to stopping
        // indices, so every index ≤ the final cutoff is guaranteed to
        // have been executed.
        let next = AtomicUsize::new(0);
        let cutoff = AtomicUsize::new(n);
        let (tx, rx) = unbounded::<(usize, T)>();
        let workers = self.threads.min(n);
        let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
        crossbeam::thread::scope(|s| {
            for _ in 0..workers {
                let tx = tx.clone();
                let (next, cutoff, f, stop) = (&next, &cutoff, &f, &stop);
                s.spawn(move |_| loop {
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    if i >= n || i > cutoff.load(Ordering::SeqCst) {
                        break;
                    }
                    let r = f(i);
                    if stop(&r) {
                        cutoff.fetch_min(i, Ordering::SeqCst);
                    }
                    if tx.send((i, r)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            slots.resize_with(n, || None);
            while let Ok((i, r)) = rx.recv() {
                slots[i] = Some(r);
            }
        })
        .expect("pool worker panicked");
        let stop_at = cutoff.load(Ordering::SeqCst);
        let len = if stop_at < n { stop_at + 1 } else { n };
        slots
            .into_iter()
            .take(len)
            .map(|r| r.expect("every index up to the cutoff was executed"))
            .collect()
    }
}

impl Default for Pool {
    fn default() -> Self {
        Pool::current()
    }
}

/// A [`Pool`] is the production [`triad_graph::kernels::ParallelExecutor`]:
/// the graph crate's parallel triangle kernels
/// (`kernels::count_triangles_par`, `kernels::triangle_edges_par`) shard
/// work over fixed edge ranges and reduce through this impl's
/// [`Pool::ordered_map`], inheriting its thread-count-independence
/// guarantee. (The trait lives in `triad-graph` because the crate
/// dependency points this way round.)
impl triad_graph::kernels::ParallelExecutor for Pool {
    fn ordered_map_items<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.ordered_map(n, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_map_matches_serial_at_every_thread_count() {
        let expect: Vec<u64> = (0..37u64).map(|i| i.wrapping_mul(0x9E37) ^ 13).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = Pool::new(threads).ordered_map(37, |i| (i as u64).wrapping_mul(0x9E37) ^ 13);
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn ordered_map_until_returns_the_serial_prefix() {
        // Stops at index 5 (the smallest stopping index), not at 11.
        let stops = |x: &usize| *x == 5 || *x == 11;
        let expect: Vec<usize> = (0..=5).collect();
        for threads in [1, 2, 4, 16] {
            let got = Pool::new(threads).ordered_map_until(40, |i| i, stops);
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn no_stop_returns_everything_and_empty_is_empty() {
        let pool = Pool::new(4);
        assert_eq!(pool.ordered_map(0, |i| i), Vec::<usize>::new());
        assert_eq!(pool.ordered_map_until(6, |i| i, |_| false).len(), 6);
        // Stop at index 0: exactly one item, as a serial loop would do.
        assert_eq!(pool.ordered_map_until(6, |i| i, |_| true), vec![0]);
    }

    #[test]
    fn pool_sizing_clamps_and_reports() {
        assert_eq!(Pool::new(0).threads(), 1);
        assert_eq!(Pool::serial().threads(), 1);
        assert_eq!(Pool::new(7).threads(), 7);
        assert!(configured_threads() >= 1);
    }

    #[test]
    fn clamped_never_oversubscribes_the_machine() {
        let hw = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        assert_eq!(Pool::clamped(1).threads(), 1);
        assert_eq!(Pool::clamped(usize::MAX).threads(), hw);
        assert!(Pool::clamped(0).threads() >= 1);
    }

    #[test]
    fn worker_panic_propagates_like_a_serial_panic() {
        let caught = std::panic::catch_unwind(|| {
            Pool::new(4).ordered_map(8, |i| {
                assert!(i != 3, "boom");
                i
            })
        });
        assert!(caught.is_err());
    }
}
