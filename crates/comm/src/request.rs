//! The coordinator-model RPC surface.
//!
//! Unrestricted protocols are expressed as sequences of typed requests
//! from the coordinator to players; each request and its response carry an
//! exact bit cost. Arguments that name shared-randomness objects (`tag`
//! fields) are free — the public random string is shared by assumption —
//! while graph-content arguments (vertices, edges, probabilities the
//! coordinator computed) are charged.

use crate::bits::{bits_for_count, bits_per_edge, bits_per_vertex, BitCost};
use triad_graph::{Edge, VertexId};

/// A request from the coordinator to a single player (or broadcast).
#[derive(Debug, Clone, PartialEq)]
pub enum PlayerRequest {
    /// "Is this edge in your input?" → [`Payload::Bit`](crate::message::Payload::Bit).
    HasEdge(Edge),
    /// "Your first edge incident to `v` under public permutation
    /// `perm_tag`" → [`Payload::Edge`](crate::message::Payload::Edge). The permutation ranks all
    /// potential edges, so duplicated edges are not over-weighted
    /// (the paper's random-neighbor primitive).
    FirstIncidentEdge {
        /// The vertex whose incident edges are ranked.
        v: VertexId,
        /// Shared-randomness tag naming the permutation (free).
        perm_tag: u64,
    },
    /// "Your first edge overall under permutation `perm_tag`" →
    /// [`Payload::Edge`](crate::message::Payload::Edge) (the uniform-random-edge primitive).
    FirstEdge {
        /// Shared-randomness tag naming the permutation (free).
        perm_tag: u64,
    },
    /// "Your local degree of `v`" → [`Payload::Count`](crate::message::Payload::Count)
    /// (exact; only sound without duplication).
    LocalDegree {
        /// The queried vertex.
        v: VertexId,
    },
    /// "How many edges do you hold?" → [`Payload::Count`](crate::message::Payload::Count).
    LocalEdgeCount,
    /// "The binary length of your local edge count" → [`Payload::Count`](crate::message::Payload::Count)
    /// (phase 1 of the distinct-edges estimator, the Theorem 3.1 remark
    /// on estimating distinct elements).
    EdgeCountMsb,
    /// "Does the public *edge* set (tag, p) intersect your input?" →
    /// [`Payload::Bit`](crate::message::Payload::Bit) (one sampling experiment of the distinct-edges
    /// estimator; charged one response bit like `SampleHit`).
    GlobalSampleHit {
        /// Shared-randomness tag naming the sampled pair set (free).
        tag: u64,
        /// Per-pair sampling probability.
        p: f64,
    },
    /// "The binary length (MSB index + 1) of your local degree of `v`" →
    /// [`Payload::Count`](crate::message::Payload::Count) (phase 1 of Theorem 3.1).
    DegreeMsb {
        /// The queried vertex.
        v: VertexId,
    },
    /// "Your local degree of `v`, truncated to its top `prefix_bits`
    /// bits" → [`Payload::Bits`](crate::message::Payload::Bits) (Lemma 3.2, no-duplication α-approx).
    DegreePrefix {
        /// The queried vertex.
        v: VertexId,
        /// How many leading bits of the degree to keep.
        prefix_bits: u32,
    },
    /// "Does the public vertex set (tag, p) contain a neighbor of `v` in
    /// your input?" → [`Payload::Bit`](crate::message::Payload::Bit) (one sampling experiment of
    /// Theorem 3.1 phase 2).
    SampleHit {
        /// The center vertex.
        v: VertexId,
        /// Shared-randomness tag naming the sampled set (free).
        tag: u64,
        /// Per-vertex sampling probability.
        p: f64,
    },
    /// "Your first vertex, under permutation `perm_tag`, in the suspect
    /// set `B̃_i^j = {v : 3^i/k ≤ d_j(v) ≤ 3^{i+1}}`" →
    /// [`Payload::Vertex`](crate::message::Payload::Vertex) (Algorithm 1).
    FirstSuspectInBucket {
        /// Bucket index `i`.
        bucket: usize,
        /// Number of players `k` (fixes the `3^i/k` lower cutoff).
        k: usize,
        /// Shared-randomness tag naming the permutation (free).
        perm_tag: u64,
    },
    /// "Your `count` first vertices, under permutation `perm_tag`, in the
    /// suspect set `B̃_i^j`" → [`Payload::Vertices`](crate::message::Payload::Vertices).
    ///
    /// The batched form of Algorithm 1: merging the players' lists by
    /// rank gives the `count` globally lowest-ranked suspects — a uniform
    /// sample *without replacement* from `B̃_i`, at the same total bit
    /// cost as `count` single-sample rounds (`q·k` vertex ids either
    /// way) but one pass over each player's input instead of `q`.
    SuspectSample {
        /// Bucket index `i`.
        bucket: usize,
        /// Number of players `k` (fixes the `3^i/k` lower cutoff).
        k: usize,
        /// Shared-randomness tag naming the permutation (free).
        perm_tag: u64,
        /// How many suspects each player reports at most.
        count: usize,
    },
    /// "Your edges at `v` whose other endpoint lies in the public set
    /// (tag, p), at most `cap` of them" → [`Payload::Edges`](crate::message::Payload::Edges)
    /// (Algorithm 4, SampleEdges).
    IncidentEdgesSampled {
        /// The center vertex.
        v: VertexId,
        /// Shared-randomness tag naming the sampled set (free).
        tag: u64,
        /// Per-vertex sampling probability.
        p: f64,
        /// Upper bound on edges returned (protocol constant, free).
        cap: usize,
    },
    /// "Here are candidate edges; if two of them form a vee whose closing
    /// edge is in your input, name the triangle" → [`Payload::Triangle`](crate::message::Payload::Triangle)
    /// (the final step of FindTriangleVee).
    FindClosingTriangle {
        /// The candidate edges the coordinator collected.
        edges: Vec<Edge>,
    },
    /// "Your edges with both endpoints in the public set (tag, p), at most
    /// `cap`" → [`Payload::Edges`](crate::message::Payload::Edges) (AlgHigh's induced sample).
    InducedEdges {
        /// Shared-randomness tag naming the sampled set (free).
        tag: u64,
        /// Per-vertex sampling probability.
        p: f64,
        /// Upper bound on edges returned.
        cap: usize,
    },
    /// "Your edges with one endpoint in R = (r_tag, p_r) and the other in
    /// R ∪ S, S = (s_tag, p_s), at most `cap`" → [`Payload::Edges`](crate::message::Payload::Edges)
    /// (AlgLow's sample).
    RsEdges {
        /// Tag of the small set `R` (free).
        r_tag: u64,
        /// Sampling probability of `R`.
        p_r: f64,
        /// Tag of the large set `S` (free).
        s_tag: u64,
        /// Sampling probability of `S`.
        p_s: f64,
        /// Upper bound on edges returned.
        cap: usize,
    },
}

impl PlayerRequest {
    /// The bit cost of sending this request to one player.
    pub fn bit_len(&self, n: usize) -> BitCost {
        let v = bits_per_vertex(n);
        let e = bits_per_edge(n);
        let cost = match self {
            PlayerRequest::HasEdge(_) => e,
            PlayerRequest::FirstIncidentEdge { .. } => v,
            PlayerRequest::FirstEdge { .. } => 0,
            PlayerRequest::LocalDegree { .. } => v,
            PlayerRequest::LocalEdgeCount => 0,
            PlayerRequest::EdgeCountMsb => 0,
            // Same accounting as SampleHit: the schedule is protocol
            // state, the set is shared randomness.
            PlayerRequest::GlobalSampleHit { .. } => 0,
            PlayerRequest::DegreeMsb { .. } => v,
            PlayerRequest::DegreePrefix { prefix_bits, .. } => {
                v + bits_for_count(u64::from(*prefix_bits))
            }
            // The center vertex and the guess schedule are fixed by the
            // enclosing degree-approximation instance (announced once by
            // the DegreeMsb round), and the sampled set comes from shared
            // randomness — so one experiment costs only the response bit,
            // matching Theorem 3.1's O(k) per experiment.
            PlayerRequest::SampleHit { .. } => 0,
            PlayerRequest::FirstSuspectInBucket { bucket, .. } => bits_for_count(*bucket as u64),
            PlayerRequest::SuspectSample { bucket, count, .. } => {
                bits_for_count(*bucket as u64) + bits_for_count(*count as u64)
            }
            PlayerRequest::IncidentEdgesSampled { .. } => v + 32,
            PlayerRequest::FindClosingTriangle { edges } => {
                bits_for_count(edges.len() as u64) + e * edges.len() as u64
            }
            PlayerRequest::InducedEdges { .. } => 32,
            PlayerRequest::RsEdges { .. } => 64,
        };
        BitCost(cost)
    }

    /// A short label for transcript breakdowns.
    pub fn label(&self) -> &'static str {
        match self {
            PlayerRequest::HasEdge(_) => "has_edge",
            PlayerRequest::FirstIncidentEdge { .. } => "first_incident",
            PlayerRequest::FirstEdge { .. } => "first_edge",
            PlayerRequest::LocalDegree { .. } => "local_degree",
            PlayerRequest::LocalEdgeCount => "edge_count",
            PlayerRequest::EdgeCountMsb => "edge_count_msb",
            PlayerRequest::GlobalSampleHit { .. } => "global_sample_hit",
            PlayerRequest::DegreeMsb { .. } => "degree_msb",
            PlayerRequest::DegreePrefix { .. } => "degree_prefix",
            PlayerRequest::SampleHit { .. } => "sample_hit",
            PlayerRequest::FirstSuspectInBucket { .. } => "suspect",
            PlayerRequest::SuspectSample { .. } => "suspect_batch",
            PlayerRequest::IncidentEdgesSampled { .. } => "incident_sampled",
            PlayerRequest::FindClosingTriangle { .. } => "close_triangle",
            PlayerRequest::InducedEdges { .. } => "induced",
            PlayerRequest::RsEdges { .. } => "rs_edges",
        }
    }
}

/// Internal control messages for the threaded runtime.
#[derive(Debug)]
pub(crate) enum Envelope {
    /// A protocol request expecting a [`Payload`] response.
    Request(PlayerRequest),
    /// Shut the player thread down.
    Halt,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_costs() {
        let n = 1024; // 10-bit vertices
        let e = Edge::new(VertexId(0), VertexId(1));
        assert_eq!(PlayerRequest::HasEdge(e).bit_len(n), BitCost(20));
        assert_eq!(
            PlayerRequest::FirstIncidentEdge {
                v: VertexId(0),
                perm_tag: 9
            }
            .bit_len(n),
            BitCost(10)
        );
        assert_eq!(
            PlayerRequest::FirstEdge { perm_tag: 1 }.bit_len(n),
            BitCost(0)
        );
        assert_eq!(PlayerRequest::LocalEdgeCount.bit_len(n), BitCost(0));
        assert_eq!(
            PlayerRequest::SampleHit {
                v: VertexId(1),
                tag: 0,
                p: 0.5
            }
            .bit_len(n),
            BitCost(0)
        );
        assert_eq!(
            PlayerRequest::FindClosingTriangle { edges: vec![e, e] }.bit_len(n),
            BitCost(2 + 40)
        );
    }

    #[test]
    fn labels_are_distinct_enough() {
        let e = Edge::new(VertexId(0), VertexId(1));
        let reqs = [
            PlayerRequest::HasEdge(e),
            PlayerRequest::FirstEdge { perm_tag: 0 },
            PlayerRequest::LocalEdgeCount,
            PlayerRequest::FindClosingTriangle { edges: vec![] },
        ];
        let labels: std::collections::HashSet<_> = reqs.iter().map(|r| r.label()).collect();
        assert_eq!(labels.len(), reqs.len());
    }
}
