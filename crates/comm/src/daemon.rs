//! The networked coordinator daemon and its player-side counterpart —
//! the two halves of `triad serve` / `triad connect`.
//!
//! [`TcpCoordinator`] owns the listening socket: it accepts player
//! connections, handshakes each one (a [`Hello`] answered by a
//! [`Welcome`] carrying protocol name, `k`, `n`, seed, cost model and
//! the player's slot), and once every expected slot is filled hands
//! back a [`TcpTransport`] ready to drop into a
//! [`Runtime`](crate::runtime::Runtime). [`PlayerSession`] is the other
//! side: connect, learn your assignment, then [`serve`] requests against
//! a local [`PlayerState`] until the coordinator says
//! [`Goodbye`](crate::wire::WireMessage::Goodbye).
//!
//! The wire format both halves speak is specified normatively in
//! `docs/NETWORKING.md`; the codec lives in [`crate::wire`].
//!
//! [`Hello`]: crate::wire::WireMessage::Hello
//! [`Welcome`]: crate::wire::Welcome
//! [`serve`]: PlayerSession::serve

use crate::player::PlayerState;
use crate::rand::SharedRandomness;
use crate::runtime::{CostModel, TcpTransport};
use crate::simultaneous::SimMessage;
use crate::wire::{self, Welcome, WireError, WireMessage};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Failures of session establishment and player-side serving — the
/// pre-run phase, before the [`RunError`](crate::runtime::RunError)
/// taxonomy of an executing protocol applies.
#[derive(Debug)]
#[non_exhaustive]
pub enum NetError {
    /// Socket-level failure (connect refused, listener died, EOF).
    Io(std::io::Error),
    /// A frame-level failure from the wire codec.
    Wire(WireError),
    /// The peer violated the session protocol (rejected registration,
    /// unexpected frame, bad parameters).
    Protocol(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "network error: {e}"),
            NetError::Wire(e) => write!(f, "wire error: {e}"),
            NetError::Protocol(what) => write!(f, "session error: {what}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            NetError::Wire(e) => Some(e),
            NetError::Protocol(_) => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Wire(e)
    }
}

/// Everything a run needs agreed between coordinator and players — the
/// contents of the [`Welcome`] each player receives, minus its slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Number of players the run expects; `accept_players` returns once
    /// this many slots are filled.
    pub k: usize,
    /// Number of vertices of the global graph.
    pub n: usize,
    /// The shared-randomness seed in force (already rep-derived if the
    /// caller amplifies).
    pub seed: u64,
    /// The charging model.
    pub cost_model: CostModel,
    /// Protocol name (`unrestricted`, `low`, `high`, `oblivious`,
    /// `exact`).
    pub protocol: String,
    /// Free-form `key=value` protocol parameters (e.g. `eps=0.2 d=8`).
    pub params: String,
}

impl ServeConfig {
    fn welcome_for(&self, player: u32) -> Welcome {
        Welcome {
            player,
            k: self.k as u32,
            n: self.n as u64,
            seed: self.seed,
            cost_model: self.cost_model,
            protocol: self.protocol.clone(),
            params: self.params.clone(),
        }
    }
}

/// The listening half of `triad serve`: accepts and registers player
/// connections until the expected player set is complete.
#[derive(Debug)]
pub struct TcpCoordinator {
    listener: TcpListener,
}

impl TcpCoordinator {
    /// Binds the coordinator's listening socket. Bind to port 0 to let
    /// the OS pick — [`local_addr`](Self::local_addr) reports the
    /// result.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        Ok(TcpCoordinator {
            listener: TcpListener::bind(addr)?,
        })
    }

    /// The address the coordinator actually listens on.
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts connections until all `cfg.k` slots are filled, then
    /// returns the ordered [`TcpTransport`].
    ///
    /// Each connection is handshaken inline: a
    /// [`Hello`](WireMessage::Hello) may claim an explicit slot (useful
    /// when share files are pre-assigned) or take the lowest free one.
    /// Out-of-range and already-taken slots are answered with an
    /// [`Error`](WireMessage::Error) frame and the connection is
    /// dropped — the run keeps waiting for a valid claimant.
    ///
    /// # Errors
    ///
    /// [`NetError::Protocol`] when `timeout` expires before the player
    /// set completes; I/O failures of the listener itself propagate as
    /// [`NetError::Io`].
    pub fn accept_players(
        &self,
        cfg: &ServeConfig,
        timeout: Duration,
    ) -> Result<TcpTransport, NetError> {
        if cfg.k == 0 {
            return Err(NetError::Protocol("k must be at least 1".into()));
        }
        let deadline = Instant::now() + timeout;
        self.listener.set_nonblocking(true)?;
        let mut slots: Vec<Option<TcpStream>> = (0..cfg.k).map(|_| None).collect();
        let mut filled = 0usize;
        while filled < cfg.k {
            let (stream, _) = match self.listener.accept() {
                Ok(accepted) => accepted,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(NetError::Protocol(format!(
                            "timed out with {filled}/{} players registered",
                            cfg.k
                        )));
                    }
                    std::thread::sleep(Duration::from_millis(5));
                    continue;
                }
                Err(e) => return Err(NetError::Io(e)),
            };
            if let Some((slot, stream)) = self.register(stream, cfg, &slots, deadline, timeout)? {
                slots[slot] = Some(stream);
                filled += 1;
            }
        }
        self.listener.set_nonblocking(false)?;
        // `filled == k` implies every slot is occupied, but a hostile
        // network must never be one invariant away from a panic: an
        // empty slot is a typed protocol error, not a crash.
        let mut conns = Vec::with_capacity(cfg.k);
        for (slot, stream) in slots.into_iter().enumerate() {
            match stream {
                Some(s) => conns.push(s),
                None => {
                    return Err(NetError::Protocol(format!(
                        "slot {slot} empty after census of {} players",
                        cfg.k
                    )))
                }
            }
        }
        Ok(TcpTransport::from_conns(conns, timeout))
    }

    /// Handshakes one accepted connection. Returns `Ok(None)` when the
    /// connection was rejected (bad slot, bad first frame, died during
    /// setup, hung up before its `Welcome`) — the caller keeps
    /// accepting. Nothing a single dialer does can surface an error
    /// from here: a hostile client can cost the run at most its own
    /// handshake window, never the listener.
    fn register(
        &self,
        mut stream: TcpStream,
        cfg: &ServeConfig,
        slots: &[Option<TcpStream>],
        deadline: Instant,
        timeout: Duration,
    ) -> Result<Option<(usize, TcpStream)>, NetError> {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            // The accept loop will notice the expired deadline and
            // return the census error.
            return Ok(None);
        }
        // The accepted socket may inherit the listener's non-blocking
        // mode; the handshake wants a plain bounded read. A silent
        // dialer gets at most the remaining registration window, so it
        // cannot stall the census past the caller's deadline. A socket
        // that dies during setup is a rejected dialer, not a dead run.
        let setup = stream
            .set_nonblocking(false)
            .and_then(|()| stream.set_nodelay(true))
            .and_then(|()| stream.set_read_timeout(Some(timeout.min(remaining))));
        if setup.is_err() {
            return Ok(None);
        }
        let hello = match wire::read_frame(&mut stream) {
            Ok(WireMessage::Hello { slot }) => slot,
            Ok(other) => {
                let _ = wire::write_frame(
                    &mut stream,
                    &WireMessage::Error {
                        reason: format!("expected hello, got {}", other.kind()),
                    },
                );
                return Ok(None);
            }
            // A garbled, silent or vanished dialer is not fatal to the
            // run: drop it and keep waiting for a real player.
            Err(_) => return Ok(None),
        };
        let slot = match hello {
            Some(s) => {
                let s = s as usize;
                if s >= cfg.k {
                    let _ = wire::write_frame(
                        &mut stream,
                        &WireMessage::Error {
                            reason: format!("slot {s} out of range for k={}", cfg.k),
                        },
                    );
                    return Ok(None);
                }
                if slots[s].is_some() {
                    let _ = wire::write_frame(
                        &mut stream,
                        &WireMessage::Error {
                            reason: format!("slot {s} already taken"),
                        },
                    );
                    return Ok(None);
                }
                s
            }
            None => match slots.iter().position(Option::is_none) {
                Some(free) => free,
                None => return Ok(None),
            },
        };
        // A peer that hangs up between its Hello and our Welcome must
        // not kill the listener: drop it and leave the slot free for a
        // real claimant.
        if wire::write_frame(
            &mut stream,
            &WireMessage::Welcome(cfg.welcome_for(slot as u32)),
        )
        .is_err()
        {
            return Ok(None);
        }
        Ok(Some((slot, stream)))
    }
}

/// How a player session ended: the request count it served and the
/// coordinator's farewell, when the session closed cleanly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeSummary {
    /// Number of protocol requests answered (control frames excluded).
    pub requests: u64,
    /// The verdict line from the coordinator's
    /// [`Goodbye`](WireMessage::Goodbye), or `None` when the session
    /// ended by hitting a [`serve_until`](PlayerSession::serve_until)
    /// limit.
    pub farewell: Option<String>,
}

/// The player half of a networked run: one registered connection plus
/// the [`Welcome`] describing the assignment.
#[derive(Debug)]
pub struct PlayerSession {
    stream: TcpStream,
    welcome: Welcome,
}

impl PlayerSession {
    /// Dials the coordinator and completes the handshake, optionally
    /// claiming an explicit player slot. `timeout` bounds the handshake
    /// only; once registered, the session waits indefinitely between
    /// requests (the coordinator is allowed to think).
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] when the dial fails, [`NetError::Protocol`]
    /// when the coordinator rejects the registration (the rejection
    /// reason is passed through).
    pub fn connect<A: ToSocketAddrs>(
        addr: A,
        slot: Option<u32>,
        timeout: Duration,
    ) -> Result<Self, NetError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        wire::write_frame(&mut stream, &WireMessage::Hello { slot }).map_err(NetError::Io)?;
        let welcome = match wire::read_frame(&mut stream)? {
            WireMessage::Welcome(w) => w,
            WireMessage::Error { reason } => return Err(NetError::Protocol(reason)),
            other => {
                return Err(NetError::Protocol(format!(
                    "expected welcome, got {}",
                    other.kind()
                )))
            }
        };
        stream.set_read_timeout(None)?;
        Ok(PlayerSession { stream, welcome })
    }

    /// The run assignment the coordinator handed this player.
    pub fn welcome(&self) -> &Welcome {
        &self.welcome
    }

    /// Serves coordinator requests against `state` until the coordinator
    /// says goodbye. `sim` computes this player's one-shot message when
    /// a simultaneous protocol is being run (players in multi-round runs
    /// can pass a closure returning [`SimMessage::empty`]).
    ///
    /// # Errors
    ///
    /// Surfaces socket failures, garbled frames and protocol violations
    /// as [`NetError`]; a clean [`Goodbye`](WireMessage::Goodbye)
    /// returns the [`ServeSummary`].
    pub fn serve<F>(self, state: &PlayerState, sim: F) -> Result<ServeSummary, NetError>
    where
        F: FnMut(&PlayerState, &SharedRandomness) -> SimMessage<'static>,
    {
        self.serve_until(state, sim, None)
    }

    /// [`serve`](Self::serve) with a request budget: after answering
    /// `limit` protocol requests the session returns early and **drops
    /// the connection** — a player that walks away mid-round. This is
    /// deliberate conformance-test support: the coordinator observes the
    /// hangup as a typed
    /// [`RunError::Transport`](crate::runtime::RunError::Transport) and
    /// its quorum machinery must degrade to `inconclusive`, never flip a
    /// verdict (see `docs/NETWORKING.md` and the TCP differential
    /// suite).
    ///
    /// # Errors
    ///
    /// As [`serve`](Self::serve).
    pub fn serve_until<F>(
        mut self,
        state: &PlayerState,
        mut sim: F,
        limit: Option<u64>,
    ) -> Result<ServeSummary, NetError>
    where
        F: FnMut(&PlayerState, &SharedRandomness) -> SimMessage<'static>,
    {
        let mut shared = SharedRandomness::new(self.welcome.seed);
        let mut requests = 0u64;
        loop {
            match wire::read_frame(&mut self.stream)? {
                WireMessage::Request { id, req } => {
                    let payload = state.handle(&req, &shared);
                    wire::write_frame(&mut self.stream, &WireMessage::Response { id, payload })
                        .map_err(NetError::Io)?;
                    requests += 1;
                }
                WireMessage::SimRequest { id } => {
                    let message = sim(state, &shared);
                    wire::write_frame(&mut self.stream, &WireMessage::SimResponse { id, message })
                        .map_err(NetError::Io)?;
                    requests += 1;
                }
                WireMessage::AdoptShared { seed } => {
                    shared = SharedRandomness::new(seed);
                    wire::write_frame(&mut self.stream, &WireMessage::Ack).map_err(NetError::Io)?;
                }
                WireMessage::Goodbye { summary } => {
                    return Ok(ServeSummary {
                        requests,
                        farewell: Some(summary),
                    })
                }
                WireMessage::Error { reason } => return Err(NetError::Protocol(reason)),
                other => {
                    return Err(NetError::Protocol(format!(
                        "unexpected {} frame from coordinator",
                        other.kind()
                    )))
                }
            }
            if let Some(max) = limit {
                if requests >= max {
                    return Ok(ServeSummary {
                        requests,
                        farewell: None,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Payload;
    use crate::request::PlayerRequest;
    use crate::runtime::Transport;
    use std::time::Duration;
    use triad_graph::{Edge, VertexId};

    fn e(a: u32, b: u32) -> Edge {
        Edge::new(VertexId(a), VertexId(b))
    }

    fn cfg(k: usize) -> ServeConfig {
        ServeConfig {
            k,
            n: 4,
            seed: 11,
            cost_model: CostModel::Coordinator,
            protocol: "unrestricted".into(),
            params: "eps=0.5".into(),
        }
    }

    #[test]
    fn full_session_roundtrip_with_reseed_and_goodbye() {
        let coordinator = TcpCoordinator::bind("127.0.0.1:0").unwrap();
        let addr = coordinator.local_addr().unwrap();
        let shares = [vec![e(0, 1), e(1, 2)], vec![e(0, 2)]];
        let players: Vec<_> = (0..2u32)
            .map(|j| {
                let share = shares[j as usize].clone();
                std::thread::spawn(move || {
                    // Player 1 claims its slot explicitly, player 0 takes
                    // the free one.
                    let slot = (j == 1).then_some(1);
                    let session =
                        PlayerSession::connect(addr, slot, Duration::from_secs(10)).unwrap();
                    let w = session.welcome().clone();
                    assert_eq!(w.k, 2);
                    assert_eq!(w.protocol, "unrestricted");
                    let state = PlayerState::new(w.player as usize, w.n as usize, &share);
                    session.serve(&state, |_, _| SimMessage::empty()).unwrap()
                })
            })
            .collect();
        let mut transport = coordinator
            .accept_players(&cfg(2), Duration::from_secs(10))
            .unwrap();
        assert_eq!(transport.k(), 2);
        assert_eq!(
            transport.try_deliver(0, &PlayerRequest::HasEdge(e(0, 1))),
            Ok(Payload::Bit(true))
        );
        assert_eq!(
            transport.try_deliver(1, &PlayerRequest::HasEdge(e(0, 1))),
            Ok(Payload::Bit(false))
        );
        transport.adopt_shared(SharedRandomness::new(99));
        assert_eq!(
            transport.try_deliver(1, &PlayerRequest::LocalEdgeCount),
            Ok(Payload::Count(1))
        );
        let sims = transport.collect_sim_messages().unwrap();
        assert_eq!(sims.len(), 2);
        transport.goodbye("accepted (no triangle found)");
        let mut summaries: Vec<_> = players.into_iter().map(|h| h.join().unwrap()).collect();
        summaries.sort_by_key(|s| s.requests);
        for s in &summaries {
            assert_eq!(s.farewell.as_deref(), Some("accepted (no triangle found)"));
        }
        // 2 + 1 deliveries and one sim request each.
        assert_eq!(summaries[0].requests + summaries[1].requests, 3 + 2);
    }

    #[test]
    fn bad_slot_claims_are_rejected_without_killing_the_run() {
        let coordinator = TcpCoordinator::bind("127.0.0.1:0").unwrap();
        let addr = coordinator.local_addr().unwrap();
        let accept = std::thread::spawn(move || {
            coordinator.accept_players(&cfg(2), Duration::from_secs(10))
        });
        // Out of range.
        let err = PlayerSession::connect(addr, Some(5), Duration::from_secs(10)).unwrap_err();
        assert!(
            matches!(&err, NetError::Protocol(r) if r.contains("out of range")),
            "{err}"
        );
        // Valid explicit claim.
        let a = PlayerSession::connect(addr, Some(0), Duration::from_secs(10)).unwrap();
        assert_eq!(a.welcome().player, 0);
        // Duplicate claim.
        let err = PlayerSession::connect(addr, Some(0), Duration::from_secs(10)).unwrap_err();
        assert!(
            matches!(&err, NetError::Protocol(r) if r.contains("already taken")),
            "{err}"
        );
        // Free-slot claim completes the set.
        let b = PlayerSession::connect(addr, None, Duration::from_secs(10)).unwrap();
        assert_eq!(b.welcome().player, 1);
        let transport = accept.join().unwrap().unwrap();
        assert_eq!(transport.k(), 2);
    }

    #[test]
    fn malformed_hello_battery_never_kills_the_listener() {
        use std::io::Write;
        let coordinator = TcpCoordinator::bind("127.0.0.1:0").unwrap();
        let addr = coordinator.local_addr().unwrap();
        let accept = std::thread::spawn(move || {
            coordinator.accept_players(&cfg(1), Duration::from_secs(10))
        });
        // (a) Pure garbage instead of a frame.
        let mut garbage = TcpStream::connect(addr).unwrap();
        garbage.write_all(&[0xFF; 32]).unwrap();
        drop(garbage);
        // (b) A truncated frame: a length prefix promising 100 bytes,
        // then a hangup three bytes in.
        let mut truncated = TcpStream::connect(addr).unwrap();
        truncated.write_all(&100u32.to_le_bytes()).unwrap();
        truncated.write_all(&[1, 2, 3]).unwrap();
        drop(truncated);
        // (c) Hangup before sending anything at all.
        drop(TcpStream::connect(addr).unwrap());
        // (d) A well-formed frame of the wrong type.
        let mut wrong = TcpStream::connect(addr).unwrap();
        wire::write_frame(&mut wrong, &WireMessage::Ack).unwrap();
        match wire::read_frame(&mut wrong).unwrap() {
            WireMessage::Error { reason } => assert!(reason.contains("expected hello"), "{reason}"),
            other => panic!("expected error frame, got {}", other.kind()),
        }
        drop(wrong);
        // (e) A real player still registers and the run completes.
        let share = vec![e(0, 1)];
        let player = std::thread::spawn(move || {
            let session = PlayerSession::connect(addr, None, Duration::from_secs(10)).unwrap();
            let state = PlayerState::new(0, 4, &share);
            session.serve(&state, |_, _| SimMessage::empty()).unwrap()
        });
        let mut transport = accept.join().unwrap().expect("listener must survive");
        assert_eq!(
            transport.try_deliver(0, &PlayerRequest::HasEdge(e(0, 1))),
            Ok(Payload::Bit(true))
        );
        transport.goodbye("done");
        assert_eq!(player.join().unwrap().requests, 1);
    }

    #[test]
    fn duplicate_slot_raw_frames_get_typed_rejections() {
        let coordinator = TcpCoordinator::bind("127.0.0.1:0").unwrap();
        let addr = coordinator.local_addr().unwrap();
        let accept = std::thread::spawn(move || {
            coordinator.accept_players(&cfg(2), Duration::from_secs(10))
        });
        // First raw claimant takes slot 0.
        let mut first = TcpStream::connect(addr).unwrap();
        wire::write_frame(&mut first, &WireMessage::Hello { slot: Some(0) }).unwrap();
        match wire::read_frame(&mut first).unwrap() {
            WireMessage::Welcome(w) => assert_eq!(w.player, 0),
            other => panic!("expected welcome, got {}", other.kind()),
        }
        // Second claimant of the same slot gets an Error frame, not a
        // dead listener.
        let mut dup = TcpStream::connect(addr).unwrap();
        wire::write_frame(&mut dup, &WireMessage::Hello { slot: Some(0) }).unwrap();
        match wire::read_frame(&mut dup).unwrap() {
            WireMessage::Error { reason } => assert!(reason.contains("already taken"), "{reason}"),
            other => panic!("expected error frame, got {}", other.kind()),
        }
        drop(dup);
        // Slot 1 completes the census.
        let mut second = TcpStream::connect(addr).unwrap();
        wire::write_frame(&mut second, &WireMessage::Hello { slot: Some(1) }).unwrap();
        match wire::read_frame(&mut second).unwrap() {
            WireMessage::Welcome(w) => assert_eq!(w.player, 1),
            other => panic!("expected welcome, got {}", other.kind()),
        }
        let transport = accept.join().unwrap().expect("listener must survive");
        assert_eq!(transport.k(), 2);
    }

    #[test]
    fn hangup_after_hello_degrades_typed_never_panics() {
        // A dialer that sends a valid Hello and vanishes: depending on
        // socket timing the Welcome write either fails (the dialer is
        // rejected and the census times out) or lands in the kernel
        // buffer (the census completes over a dead connection and the
        // first delivery surfaces a typed RunError). Both are survival;
        // neither is a panic.
        let coordinator = TcpCoordinator::bind("127.0.0.1:0").unwrap();
        let addr = coordinator.local_addr().unwrap();
        let accept = std::thread::spawn(move || {
            coordinator.accept_players(&cfg(1), Duration::from_millis(400))
        });
        let mut ghost = TcpStream::connect(addr).unwrap();
        wire::write_frame(&mut ghost, &WireMessage::Hello { slot: Some(0) }).unwrap();
        drop(ghost);
        match accept.join().unwrap() {
            Ok(mut transport) => {
                // unwrap_err: the dead connection must fail *typed*.
                transport
                    .try_deliver(0, &PlayerRequest::LocalEdgeCount)
                    .unwrap_err();
            }
            Err(NetError::Protocol(census)) => {
                assert!(census.contains("players"), "{census}");
            }
            Err(other) => panic!("expected census timeout, got {other}"),
        }
    }

    #[test]
    fn accept_times_out_with_a_player_census() {
        let coordinator = TcpCoordinator::bind("127.0.0.1:0").unwrap();
        let err = coordinator
            .accept_players(&cfg(3), Duration::from_millis(60))
            .unwrap_err();
        assert!(
            matches!(&err, NetError::Protocol(r) if r.contains("0/3 players")),
            "{err}"
        );
    }
}
