//! The networked coordinator daemon and its player-side counterpart —
//! the two halves of `triad serve` / `triad connect`.
//!
//! [`TcpCoordinator`] owns the listening socket: it accepts player
//! connections, handshakes each one (a [`Hello`] answered by a
//! [`Welcome`] carrying protocol name, `k`, `n`, seed, cost model and
//! the player's slot), and once every expected slot is filled hands
//! back a [`TcpTransport`] ready to drop into a
//! [`Runtime`](crate::runtime::Runtime). [`PlayerSession`] is the other
//! side: connect, learn your assignment, then [`serve`] requests against
//! a local [`PlayerState`] until the coordinator says
//! [`Goodbye`](crate::wire::WireMessage::Goodbye).
//!
//! The wire format both halves speak is specified normatively in
//! `docs/NETWORKING.md`; the codec lives in [`crate::wire`].
//!
//! [`Hello`]: crate::wire::WireMessage::Hello
//! [`Welcome`]: crate::wire::Welcome
//! [`serve`]: PlayerSession::serve

use crate::player::PlayerState;
use crate::rand::{mix64, SharedRandomness};
use crate::runtime::{CostModel, TcpTransport};
use crate::simultaneous::SimMessage;
use crate::wire::{self, ErrorCode, ResumeClaim, Welcome, WireError, WireMessage};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How long the daemon's census and rejoin loops sleep between
/// non-blocking accept polls. Short enough that a claimant in the
/// backlog is picked up promptly; long enough not to spin a core.
pub const ACCEPT_POLL_INTERVAL: Duration = Duration::from_millis(5);

/// Failures of session establishment and player-side serving — the
/// pre-run phase, before the [`RunError`](crate::runtime::RunError)
/// taxonomy of an executing protocol applies.
#[derive(Debug)]
#[non_exhaustive]
pub enum NetError {
    /// Socket-level failure (connect refused, listener died, EOF).
    Io(std::io::Error),
    /// A frame-level failure from the wire codec.
    Wire(WireError),
    /// The peer violated the session protocol (rejected registration,
    /// unexpected frame, bad parameters).
    Protocol(String),
    /// The coordinator rejected this session's credential: wrong or
    /// missing `--auth-token`, or a resume claim with a bad nonce.
    Unauthorized(String),
    /// A resume claim was valid but arrived after the slot's reconnect
    /// window had expired; the run has already degraded without us.
    WindowExpired(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "network error: {e}"),
            NetError::Wire(e) => write!(f, "wire error: {e}"),
            NetError::Protocol(what) => write!(f, "session error: {what}"),
            NetError::Unauthorized(what) => write!(f, "unauthorized: {what}"),
            NetError::WindowExpired(what) => write!(f, "reconnect window expired: {what}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            NetError::Wire(e) => Some(e),
            NetError::Protocol(_) | NetError::Unauthorized(_) | NetError::WindowExpired(_) => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Wire(e)
    }
}

/// Everything a run needs agreed between coordinator and players — the
/// contents of the [`Welcome`] each player receives, minus its slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Number of players the run expects; `accept_players` returns once
    /// this many slots are filled.
    pub k: usize,
    /// Number of vertices of the global graph.
    pub n: usize,
    /// The shared-randomness seed in force (already rep-derived if the
    /// caller amplifies).
    pub seed: u64,
    /// The charging model.
    pub cost_model: CostModel,
    /// Protocol name (`unrestricted`, `low`, `high`, `oblivious`,
    /// `exact`).
    pub protocol: String,
    /// Free-form `key=value` protocol parameters (e.g. `eps=0.2 d=8`).
    pub params: String,
}

impl ServeConfig {
    fn welcome_for(&self, player: u32, resume_nonce: u64) -> Welcome {
        Welcome {
            player,
            k: self.k as u32,
            n: self.n as u64,
            seed: self.seed,
            cost_model: self.cost_model,
            protocol: self.protocol.clone(),
            params: self.params.clone(),
            resume_nonce,
        }
    }
}

/// Session-layer policy for
/// [`accept_players_with`](TcpCoordinator::accept_players_with): the
/// shared secret required of every `Hello`, and the reconnect window a
/// detached slot is held open for. The default (`None`, zero) is the
/// pre-session behavior: no authentication, any mid-run disconnect is
/// final.
#[derive(Debug, Clone, Default)]
pub struct SessionOptions {
    /// When `Some`, every `Hello` (fresh registration or resume) must
    /// carry exactly this token; mismatches are answered with a typed
    /// [`ErrorCode::Unauthorized`] `Error` frame. Compared in constant
    /// time. Plaintext on the wire — a perimeter against accidental
    /// cross-run joins, not a cryptographic identity (docs/NETWORKING.md).
    pub auth_token: Option<String>,
    /// How long a slot that times out or hangs up mid-run stays
    /// [`Detached`](docs/NETWORKING.md) awaiting a resume claim before
    /// the run degrades. `Duration::ZERO` disables the reconnect
    /// machinery entirely.
    pub reconnect_window: Duration,
}

/// Constant-time byte-string equality: scans `max(len_a, len_b)`
/// positions unconditionally so the comparison's duration leaks neither
/// the match prefix length nor the expected token's contents.
fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    let mut diff = a.len() ^ b.len();
    for i in 0..a.len().max(b.len()) {
        let x = a.get(i).copied().unwrap_or(0);
        let y = b.get(i).copied().unwrap_or(0);
        diff |= usize::from(x ^ y);
    }
    diff == 0
}

/// `true` when `presented` satisfies `expected`. A daemon without a
/// configured token accepts anything (including tokens — forward
/// compatible); a daemon with one requires an exact constant-time match.
fn token_ok(expected: Option<&str>, presented: Option<&str>) -> bool {
    match expected {
        None => true,
        Some(want) => {
            presented.is_some_and(|got| constant_time_eq(want.as_bytes(), got.as_bytes()))
        }
    }
}

/// Issues a fresh per-slot resume nonce. Unpredictable enough to stop
/// accidental cross-session resumes (seed, slot, process id and a
/// process-global counter all diffused through [`mix64`]); **not** a
/// cryptographic credential — it travels plaintext, exactly like the
/// auth token (docs/NETWORKING.md).
fn issue_nonce(seed: u64, slot: u32) -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let count = COUNTER.fetch_add(1, Ordering::Relaxed);
    let pid = u64::from(std::process::id());
    mix64(mix64(seed ^ 0x4E4F_4E43_4530_5F5Fu64) ^ (u64::from(slot) << 32) ^ pid ^ (count << 48))
}

/// The daemon-side session state that outlives the census: a clone of
/// the listening socket (kept non-blocking), the run template for
/// rejoin `Welcome`s, the auth policy, the per-slot resume nonces, and
/// the seed currently in force (updated on every reseed so a rejoining
/// player reconstructs the right shared randomness).
///
/// Owned by [`TcpTransport`](crate::runtime::TcpTransport) behind an
/// `Arc`; the transport's delivery loop polls
/// [`poll_claimants`](Self::poll_claimants) while any slot is detached.
pub(crate) struct SessionHost {
    listener: TcpListener,
    cfg: ServeConfig,
    options: SessionOptions,
    nonces: Vec<u64>,
    current_seed: Mutex<u64>,
}

impl std::fmt::Debug for SessionHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionHost")
            .field("k", &self.cfg.k)
            .field("window", &self.options.reconnect_window)
            .field("auth", &self.options.auth_token.is_some())
            .finish()
    }
}

impl SessionHost {
    /// The reconnect window slots are held open for.
    pub(crate) fn window(&self) -> Duration {
        self.options.reconnect_window
    }

    /// Records the seed now in force so rejoin `Welcome`s carry it.
    /// Called by the transport *before* it propagates a reseed, so a
    /// player that detaches mid-reseed still learns the new seed on
    /// rejoin.
    pub(crate) fn note_seed(&self, seed: u64) {
        *self.current_seed.lock().unwrap_or_else(|p| p.into_inner()) = seed;
    }

    /// Drains the accept backlog once. Claimants presenting a valid
    /// resume claim for a slot marked in `detached` (and not in
    /// `expired`) are handshaken — the first such claimant is returned
    /// with its `Welcome` already written. Everyone else is answered
    /// with a typed `Error` frame and dropped: bad token or nonce →
    /// [`ErrorCode::Unauthorized`], expired slot →
    /// [`ErrorCode::WindowExpired`], attached slot →
    /// [`ErrorCode::SlotAttached`] (the retryable race), fresh `Hello`
    /// after the census → [`ErrorCode::Generic`]. Returns `None` once
    /// the backlog is empty (or only held rejects).
    pub(crate) fn poll_claimants(
        &self,
        detached: &[bool],
        expired: &[bool],
        io_timeout: Duration,
    ) -> Option<(usize, TcpStream)> {
        loop {
            let (stream, _) = match self.listener.accept() {
                Ok(accepted) => accepted,
                Err(_) => return None, // WouldBlock or a dying listener: nothing to do
            };
            if let Some(claimed) = self.vet_claimant(stream, detached, expired, io_timeout) {
                return Some(claimed);
            }
        }
    }

    /// Handshakes one accepted connection against the rejoin rules.
    /// Never propagates an error: a hostile or garbled claimant costs
    /// only itself.
    fn vet_claimant(
        &self,
        mut stream: TcpStream,
        detached: &[bool],
        expired: &[bool],
        io_timeout: Duration,
    ) -> Option<(usize, TcpStream)> {
        let reject = |stream: &mut TcpStream, code: ErrorCode, reason: String| {
            let _ = wire::write_frame(stream, &WireMessage::Error { code, reason });
        };
        stream
            .set_nonblocking(false)
            .and_then(|()| stream.set_nodelay(true))
            .and_then(|()| stream.set_read_timeout(Some(io_timeout)))
            .ok()?;
        let (token, resume) = match wire::read_frame(&mut stream) {
            Ok(WireMessage::Hello { token, resume, .. }) => (token, resume),
            Ok(other) => {
                reject(
                    &mut stream,
                    ErrorCode::Generic,
                    format!("expected hello, got {}", other.kind()),
                );
                return None;
            }
            Err(_) => return None,
        };
        if !token_ok(self.options.auth_token.as_deref(), token.as_deref()) {
            reject(
                &mut stream,
                ErrorCode::Unauthorized,
                "invalid or missing auth token".into(),
            );
            return None;
        }
        let Some(claim) = resume else {
            reject(
                &mut stream,
                ErrorCode::Generic,
                "census is closed; only resume claims are accepted".into(),
            );
            return None;
        };
        let slot = claim.slot as usize;
        if slot >= self.cfg.k {
            reject(
                &mut stream,
                ErrorCode::Generic,
                format!("resume slot {slot} out of range for k={}", self.cfg.k),
            );
            return None;
        }
        if claim.nonce != self.nonces[slot] {
            reject(
                &mut stream,
                ErrorCode::Unauthorized,
                format!("invalid resume nonce for slot {slot}"),
            );
            return None;
        }
        if expired[slot] {
            reject(
                &mut stream,
                ErrorCode::WindowExpired,
                format!(
                    "slot {slot} reconnect window ({} ms) has expired",
                    self.options.reconnect_window.as_millis()
                ),
            );
            return None;
        }
        if !detached[slot] {
            reject(
                &mut stream,
                ErrorCode::SlotAttached,
                format!("slot {slot} is still attached; back off and retry"),
            );
            return None;
        }
        let mut welcome = self.cfg.welcome_for(claim.slot, self.nonces[slot]);
        welcome.seed = *self.current_seed.lock().unwrap_or_else(|p| p.into_inner());
        if wire::write_frame(&mut stream, &WireMessage::Welcome(welcome)).is_err() {
            return None;
        }
        Some((slot, stream))
    }
}

/// The listening half of `triad serve`: accepts and registers player
/// connections until the expected player set is complete.
#[derive(Debug)]
pub struct TcpCoordinator {
    listener: TcpListener,
}

impl TcpCoordinator {
    /// Binds the coordinator's listening socket. Bind to port 0 to let
    /// the OS pick — [`local_addr`](Self::local_addr) reports the
    /// result.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        Ok(TcpCoordinator {
            listener: TcpListener::bind(addr)?,
        })
    }

    /// The address the coordinator actually listens on.
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts connections until all `cfg.k` slots are filled, then
    /// returns the ordered [`TcpTransport`].
    ///
    /// Each connection is handshaken inline: a
    /// [`Hello`](WireMessage::Hello) may claim an explicit slot (useful
    /// when share files are pre-assigned) or take the lowest free one.
    /// Out-of-range and already-taken slots are answered with an
    /// [`Error`](WireMessage::Error) frame and the connection is
    /// dropped — the run keeps waiting for a valid claimant.
    ///
    /// # Errors
    ///
    /// [`NetError::Protocol`] when `timeout` expires before the player
    /// set completes; I/O failures of the listener itself propagate as
    /// [`NetError::Io`].
    pub fn accept_players(
        &self,
        cfg: &ServeConfig,
        timeout: Duration,
    ) -> Result<TcpTransport, NetError> {
        self.accept_players_with(cfg, timeout, &SessionOptions::default())
    }

    /// [`accept_players`](Self::accept_players) with an explicit
    /// session-layer policy: an auth token every `Hello` must present,
    /// and a reconnect window during which a slot that dies mid-run may
    /// be resumed (see `docs/NETWORKING.md`). With a non-zero window the
    /// listener stays open for the transport's lifetime, polling for
    /// resume claims whenever a slot is detached.
    ///
    /// # Errors
    ///
    /// As [`accept_players`](Self::accept_players); the census-timeout
    /// error additionally names the filled and missing slots.
    pub fn accept_players_with(
        &self,
        cfg: &ServeConfig,
        timeout: Duration,
        options: &SessionOptions,
    ) -> Result<TcpTransport, NetError> {
        if cfg.k == 0 {
            return Err(NetError::Protocol("k must be at least 1".into()));
        }
        let deadline = Instant::now() + timeout;
        self.listener.set_nonblocking(true)?;
        let nonces: Vec<u64> = (0..cfg.k as u32)
            .map(|slot| issue_nonce(cfg.seed, slot))
            .collect();
        let mut slots: Vec<Option<TcpStream>> = (0..cfg.k).map(|_| None).collect();
        let mut filled = 0usize;
        while filled < cfg.k {
            let (stream, _) = match self.listener.accept() {
                Ok(accepted) => accepted,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        let present: Vec<usize> = slots
                            .iter()
                            .enumerate()
                            .filter_map(|(j, s)| s.is_some().then_some(j))
                            .collect();
                        let missing: Vec<usize> = slots
                            .iter()
                            .enumerate()
                            .filter_map(|(j, s)| s.is_none().then_some(j))
                            .collect();
                        return Err(NetError::Protocol(format!(
                            "timed out with {filled}/{} players registered \
                             (registered slots {present:?}, missing {missing:?})",
                            cfg.k
                        )));
                    }
                    std::thread::sleep(ACCEPT_POLL_INTERVAL);
                    continue;
                }
                Err(e) => return Err(NetError::Io(e)),
            };
            if let Some((slot, stream)) =
                self.register(stream, cfg, options, &nonces, &slots, deadline, timeout)?
            {
                slots[slot] = Some(stream);
                filled += 1;
            }
        }
        // `filled == k` implies every slot is occupied, but a hostile
        // network must never be one invariant away from a panic: an
        // empty slot is a typed protocol error, not a crash.
        let mut conns = Vec::with_capacity(cfg.k);
        for (slot, stream) in slots.into_iter().enumerate() {
            match stream {
                Some(s) => conns.push(s),
                None => {
                    return Err(NetError::Protocol(format!(
                        "slot {slot} empty after census of {} players",
                        cfg.k
                    )))
                }
            }
        }
        if options.reconnect_window.is_zero() {
            self.listener.set_nonblocking(false)?;
            return Ok(TcpTransport::from_conns(conns, timeout));
        }
        // The reconnect window needs the listener for the transport's
        // lifetime. The clone shares the underlying socket (including
        // its non-blocking flag), so it must stay non-blocking — the
        // rejoin poll relies on it.
        let host = SessionHost {
            listener: self.listener.try_clone()?,
            cfg: cfg.clone(),
            options: options.clone(),
            nonces,
            current_seed: Mutex::new(cfg.seed),
        };
        Ok(TcpTransport::from_conns_with_session(
            conns,
            timeout,
            Arc::new(host),
        ))
    }

    /// Handshakes one accepted connection. Returns `Ok(None)` when the
    /// connection was rejected (bad slot, bad first frame, died during
    /// setup, hung up before its `Welcome`) — the caller keeps
    /// accepting. Nothing a single dialer does can surface an error
    /// from here: a hostile client can cost the run at most its own
    /// handshake window, never the listener.
    #[allow(clippy::too_many_arguments)]
    fn register(
        &self,
        mut stream: TcpStream,
        cfg: &ServeConfig,
        options: &SessionOptions,
        nonces: &[u64],
        slots: &[Option<TcpStream>],
        deadline: Instant,
        timeout: Duration,
    ) -> Result<Option<(usize, TcpStream)>, NetError> {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            // The accept loop will notice the expired deadline and
            // return the census error.
            return Ok(None);
        }
        // The accepted socket may inherit the listener's non-blocking
        // mode; the handshake wants a plain bounded read. A silent
        // dialer gets at most the remaining registration window, so it
        // cannot stall the census past the caller's deadline. A socket
        // that dies during setup is a rejected dialer, not a dead run.
        let setup = stream
            .set_nonblocking(false)
            .and_then(|()| stream.set_nodelay(true))
            .and_then(|()| stream.set_read_timeout(Some(timeout.min(remaining))));
        if setup.is_err() {
            return Ok(None);
        }
        let reject = |stream: &mut TcpStream, code: ErrorCode, reason: String| {
            let _ = wire::write_frame(stream, &WireMessage::Error { code, reason });
        };
        let (hello, token, resume) = match wire::read_frame(&mut stream) {
            Ok(WireMessage::Hello {
                slot,
                token,
                resume,
            }) => (slot, token, resume),
            Ok(other) => {
                reject(
                    &mut stream,
                    ErrorCode::Generic,
                    format!("expected hello, got {}", other.kind()),
                );
                return Ok(None);
            }
            // A garbled, silent or vanished dialer is not fatal to the
            // run: drop it and keep waiting for a real player.
            Err(_) => return Ok(None),
        };
        if !token_ok(options.auth_token.as_deref(), token.as_deref()) {
            reject(
                &mut stream,
                ErrorCode::Unauthorized,
                "invalid or missing auth token".into(),
            );
            return Ok(None);
        }
        if resume.is_some() {
            reject(
                &mut stream,
                ErrorCode::Unauthorized,
                "nothing to resume: the census is still open".into(),
            );
            return Ok(None);
        }
        let slot = match hello {
            Some(s) => {
                let s = s as usize;
                if s >= cfg.k {
                    reject(
                        &mut stream,
                        ErrorCode::Generic,
                        format!("slot {s} out of range for k={}", cfg.k),
                    );
                    return Ok(None);
                }
                if slots[s].is_some() {
                    reject(
                        &mut stream,
                        ErrorCode::Generic,
                        format!("slot {s} already taken"),
                    );
                    return Ok(None);
                }
                s
            }
            None => match slots.iter().position(Option::is_none) {
                Some(free) => free,
                None => return Ok(None),
            },
        };
        // The resume nonce is only a live credential when a reconnect
        // window exists; without one it is 0 so players know not to try.
        let nonce = if options.reconnect_window.is_zero() {
            0
        } else {
            nonces[slot]
        };
        // A peer that hangs up between its Hello and our Welcome must
        // not kill the listener: drop it and leave the slot free for a
        // real claimant.
        if wire::write_frame(
            &mut stream,
            &WireMessage::Welcome(cfg.welcome_for(slot as u32, nonce)),
        )
        .is_err()
        {
            return Ok(None);
        }
        Ok(Some((slot, stream)))
    }
}

/// How a player session ended: the request count it served and the
/// coordinator's farewell, when the session closed cleanly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeSummary {
    /// Number of protocol requests answered (control frames excluded).
    pub requests: u64,
    /// The verdict line from the coordinator's
    /// [`Goodbye`](WireMessage::Goodbye), or `None` when the session
    /// ended by hitting a [`serve_until`](PlayerSession::serve_until)
    /// limit.
    pub farewell: Option<String>,
    /// How many times the session lost its connection and successfully
    /// resumed its slot ([`serve_rejoining`](PlayerSession::serve_rejoining));
    /// `0` for a session that never dropped.
    pub rejoins: u64,
}

/// Client-side dialing policy for [`PlayerSession::connect_with`] and
/// [`PlayerSession::serve_rejoining`]: the slot and credential to
/// present, the handshake deadline, and the bounded exponential backoff
/// applied when the dial is refused (racing `--port-file` publication)
/// or a rejoin races the coordinator's detach detection.
#[derive(Debug, Clone)]
pub struct ConnectOptions {
    /// Explicit player slot to claim (`None` = any free slot).
    pub slot: Option<u32>,
    /// Auth token to present in the `Hello`, for daemons started with
    /// `--auth-token`.
    pub token: Option<String>,
    /// Handshake deadline (dial + `Hello`/`Welcome` exchange). Once
    /// registered the session waits indefinitely between requests.
    pub timeout: Duration,
    /// How many times a refused dial or a
    /// [`SlotAttached`](crate::wire::ErrorCode::SlotAttached) rejection
    /// is retried before the error surfaces. `0` = fail fast.
    pub retries: u32,
    /// Initial backoff between retries; doubles each attempt, capped at
    /// [`ConnectOptions::MAX_BACKOFF`].
    pub backoff: Duration,
}

impl ConnectOptions {
    /// The ceiling the exponential backoff saturates at.
    pub const MAX_BACKOFF: Duration = Duration::from_secs(2);

    /// The backoff before retry number `attempt` (0-based): doubled
    /// each time, saturating at [`Self::MAX_BACKOFF`].
    fn backoff_for(&self, attempt: u32) -> Duration {
        let exp = self
            .backoff
            .saturating_mul(2u32.saturating_pow(attempt.min(16)));
        exp.min(Self::MAX_BACKOFF)
    }
}

impl Default for ConnectOptions {
    fn default() -> Self {
        ConnectOptions {
            slot: None,
            token: None,
            timeout: crate::runtime::DEFAULT_NET_TIMEOUT,
            retries: 0,
            backoff: Duration::from_millis(50),
        }
    }
}

/// What one dial + handshake attempt produced: a registered session, a
/// typed rejection frame, or a transport-level failure worth retrying.
enum Dial {
    Ok(PlayerSession),
    Rejected { code: ErrorCode, reason: String },
    Refused(std::io::Error),
}

/// `true` for dial failures the bounded backoff loop should absorb: the
/// listener is not up yet (racing `--port-file`) or dropped the attempt.
fn dial_retryable(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::ConnectionRefused
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::AddrNotAvailable
    )
}

/// The player half of a networked run: one registered connection plus
/// the [`Welcome`] describing the assignment.
#[derive(Debug)]
pub struct PlayerSession {
    stream: TcpStream,
    welcome: Welcome,
}

impl PlayerSession {
    /// Dials the coordinator and completes the handshake, optionally
    /// claiming an explicit player slot. `timeout` bounds the handshake
    /// only; once registered, the session waits indefinitely between
    /// requests (the coordinator is allowed to think).
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] when the dial fails, [`NetError::Unauthorized`]
    /// when the daemon requires a token, [`NetError::Protocol`] for any
    /// other rejection (the reason is passed through).
    pub fn connect<A: ToSocketAddrs>(
        addr: A,
        slot: Option<u32>,
        timeout: Duration,
    ) -> Result<Self, NetError> {
        Self::connect_with(
            addr,
            &ConnectOptions {
                slot,
                timeout,
                ..ConnectOptions::default()
            },
        )
    }

    /// [`connect`](Self::connect) under an explicit [`ConnectOptions`]
    /// policy: presents the auth token, and absorbs up to
    /// `opts.retries` refused dials with exponential backoff — the fix
    /// for clients racing the daemon's `--port-file` publication.
    ///
    /// # Errors
    ///
    /// As [`connect`](Self::connect), after the retry budget is spent.
    pub fn connect_with<A: ToSocketAddrs>(
        addr: A,
        opts: &ConnectOptions,
    ) -> Result<Self, NetError> {
        let hello = WireMessage::Hello {
            slot: opts.slot,
            token: opts.token.clone(),
            resume: None,
        };
        let mut attempt = 0u32;
        loop {
            match Self::dial(&addr, opts, &hello)? {
                Dial::Ok(session) => return Ok(session),
                Dial::Rejected { code, reason } => return Err(rejection(code, reason)),
                Dial::Refused(e) => {
                    if attempt >= opts.retries {
                        return Err(NetError::Io(e));
                    }
                    std::thread::sleep(opts.backoff_for(attempt));
                    attempt += 1;
                }
            }
        }
    }

    /// Reattaches to a slot this client registered earlier in the
    /// session, presenting the `Welcome`'s resume nonce. Retries both
    /// refused dials and
    /// [`SlotAttached`](crate::wire::ErrorCode::SlotAttached) rejections
    /// (the claimant racing the coordinator's detach detection) under
    /// the same bounded backoff.
    ///
    /// # Errors
    ///
    /// [`NetError::Unauthorized`] for a bad token or nonce,
    /// [`NetError::WindowExpired`] when the slot already degraded, and
    /// the usual [`NetError::Io`]/[`NetError::Protocol`] otherwise.
    pub fn rejoin_with<A: ToSocketAddrs>(
        addr: A,
        opts: &ConnectOptions,
        claim: ResumeClaim,
    ) -> Result<Self, NetError> {
        let hello = WireMessage::Hello {
            slot: None,
            token: opts.token.clone(),
            resume: Some(claim),
        };
        let mut attempt = 0u32;
        loop {
            let retry_after = match Self::dial(&addr, opts, &hello)? {
                Dial::Ok(session) => return Ok(session),
                Dial::Rejected {
                    code: ErrorCode::SlotAttached,
                    reason,
                } => {
                    if attempt >= opts.retries {
                        return Err(rejection(ErrorCode::SlotAttached, reason));
                    }
                    opts.backoff_for(attempt)
                }
                Dial::Rejected { code, reason } => return Err(rejection(code, reason)),
                Dial::Refused(e) => {
                    if attempt >= opts.retries {
                        return Err(NetError::Io(e));
                    }
                    opts.backoff_for(attempt)
                }
            };
            std::thread::sleep(retry_after);
            attempt += 1;
        }
    }

    /// One dial + handshake attempt. Transport-level failures the
    /// backoff loop may absorb come back as [`Dial::Refused`]; typed
    /// `Error` frames as [`Dial::Rejected`]; hard local failures (e.g.
    /// an unresolvable address) propagate.
    fn dial<A: ToSocketAddrs>(
        addr: &A,
        opts: &ConnectOptions,
        hello: &WireMessage,
    ) -> Result<Dial, NetError> {
        let mut stream = match TcpStream::connect(addr) {
            Ok(s) => s,
            Err(e) if dial_retryable(&e) => return Ok(Dial::Refused(e)),
            Err(e) => return Err(NetError::Io(e)),
        };
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(opts.timeout))?;
        if let Err(e) = wire::write_frame(&mut stream, hello) {
            return Ok(Dial::Refused(e));
        }
        let welcome = match wire::read_frame(&mut stream) {
            Ok(WireMessage::Welcome(w)) => w,
            Ok(WireMessage::Error { code, reason }) => return Ok(Dial::Rejected { code, reason }),
            Ok(other) => {
                return Err(NetError::Protocol(format!(
                    "expected welcome, got {}",
                    other.kind()
                )))
            }
            Err(e) => return Err(NetError::Wire(e)),
        };
        stream.set_read_timeout(None)?;
        Ok(Dial::Ok(PlayerSession { stream, welcome }))
    }

    /// The run assignment the coordinator handed this player.
    pub fn welcome(&self) -> &Welcome {
        &self.welcome
    }

    /// Serves coordinator requests against `state` until the coordinator
    /// says goodbye. `sim` computes this player's one-shot message when
    /// a simultaneous protocol is being run (players in multi-round runs
    /// can pass a closure returning [`SimMessage::empty`]).
    ///
    /// # Errors
    ///
    /// Surfaces socket failures, garbled frames and protocol violations
    /// as [`NetError`]; a clean [`Goodbye`](WireMessage::Goodbye)
    /// returns the [`ServeSummary`].
    pub fn serve<F>(self, state: &PlayerState, sim: F) -> Result<ServeSummary, NetError>
    where
        F: FnMut(&PlayerState, &SharedRandomness) -> SimMessage<'static>,
    {
        self.serve_until(state, sim, None)
    }

    /// [`serve`](Self::serve) with a request budget: after answering
    /// `limit` protocol requests the session returns early and **drops
    /// the connection** — a player that walks away mid-round. This is
    /// deliberate conformance-test support: the coordinator observes the
    /// hangup as a typed
    /// [`RunError::Transport`](crate::runtime::RunError::Transport) and
    /// its quorum machinery must degrade to `inconclusive`, never flip a
    /// verdict (see `docs/NETWORKING.md` and the TCP differential
    /// suite).
    ///
    /// # Errors
    ///
    /// As [`serve`](Self::serve).
    pub fn serve_until<F>(
        mut self,
        state: &PlayerState,
        mut sim: F,
        limit: Option<u64>,
    ) -> Result<ServeSummary, NetError>
    where
        F: FnMut(&PlayerState, &SharedRandomness) -> SimMessage<'static>,
    {
        let mut progress = ServeProgress::fresh(self.welcome.seed);
        let farewell = self.serve_core(state, &mut sim, limit, &mut progress)?;
        Ok(ServeSummary {
            requests: progress.requests,
            farewell,
            rejoins: 0,
        })
    }

    /// Serves like [`serve`](Self::serve) but survives connection loss:
    /// when the socket dies mid-session, the player presents its resume
    /// nonce (with `opts`'s token and backoff policy) and — if the
    /// coordinator's reconnect window is still open — picks up exactly
    /// where it left off. Requests are answered statelessly from the
    /// seed in force, so a replayed request after rejoin produces the
    /// byte-identical payload (see `docs/NETWORKING.md`). Up to
    /// `opts.retries` rejoins are attempted over the session's lifetime.
    ///
    /// A session whose `Welcome` carried `resume_nonce == 0` (daemon
    /// without a reconnect window) falls back to plain
    /// [`serve`](Self::serve) semantics: the first disconnect is final.
    ///
    /// # Errors
    ///
    /// As [`serve`](Self::serve), plus [`NetError::Unauthorized`] /
    /// [`NetError::WindowExpired`] when a rejoin attempt is rejected.
    pub fn serve_rejoining<A, F>(
        mut self,
        addr: A,
        opts: &ConnectOptions,
        state: &PlayerState,
        mut sim: F,
    ) -> Result<ServeSummary, NetError>
    where
        A: ToSocketAddrs,
        F: FnMut(&PlayerState, &SharedRandomness) -> SimMessage<'static>,
    {
        let mut progress = ServeProgress::fresh(self.welcome.seed);
        let mut rejoins = 0u64;
        loop {
            match self.serve_core(state, &mut sim, None, &mut progress) {
                Ok(farewell) => {
                    return Ok(ServeSummary {
                        requests: progress.requests,
                        farewell,
                        rejoins,
                    })
                }
                Err(e) if connection_lost(&e) && self.welcome.resume_nonce != 0 => {
                    if rejoins >= u64::from(opts.retries) {
                        return Err(e);
                    }
                    let claim = ResumeClaim {
                        slot: self.welcome.player,
                        nonce: self.welcome.resume_nonce,
                        last_acked: progress.last_acked,
                    };
                    self = Self::rejoin_with(&addr, opts, claim)?;
                    // The rejoin Welcome carries the seed currently in
                    // force (the coordinator may have reseeded while we
                    // were gone).
                    progress.shared = SharedRandomness::new(self.welcome.seed);
                    rejoins += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// The serve loop proper, factored out so [`serve_until`] and
    /// [`serve_rejoining`](Self::serve_rejoining) share it. Returns the
    /// farewell on a clean `Goodbye`, `None` when `limit` was hit;
    /// `progress` survives the call so a rejoin resumes counting where
    /// the dead connection stopped.
    ///
    /// [`serve_until`]: Self::serve_until
    fn serve_core<F>(
        &mut self,
        state: &PlayerState,
        sim: &mut F,
        limit: Option<u64>,
        progress: &mut ServeProgress,
    ) -> Result<Option<String>, NetError>
    where
        F: FnMut(&PlayerState, &SharedRandomness) -> SimMessage<'static>,
    {
        loop {
            match wire::read_frame(&mut self.stream)? {
                WireMessage::Request { id, req } => {
                    let payload = state.handle(&req, &progress.shared);
                    wire::write_frame(&mut self.stream, &WireMessage::Response { id, payload })
                        .map_err(NetError::Io)?;
                    progress.requests += 1;
                    progress.last_acked = id;
                }
                WireMessage::SimRequest { id } => {
                    let message = sim(state, &progress.shared);
                    wire::write_frame(&mut self.stream, &WireMessage::SimResponse { id, message })
                        .map_err(NetError::Io)?;
                    progress.requests += 1;
                    progress.last_acked = id;
                }
                WireMessage::AdoptShared { seed } => {
                    progress.shared = SharedRandomness::new(seed);
                    wire::write_frame(&mut self.stream, &WireMessage::Ack).map_err(NetError::Io)?;
                }
                WireMessage::Goodbye { summary } => return Ok(Some(summary)),
                WireMessage::Error { code, reason } => return Err(rejection(code, reason)),
                other => {
                    return Err(NetError::Protocol(format!(
                        "unexpected {} frame from coordinator",
                        other.kind()
                    )))
                }
            }
            if let Some(max) = limit {
                if progress.requests >= max {
                    return Ok(None);
                }
            }
        }
    }
}

/// Serve-loop state that must outlive any single connection so a rejoin
/// resumes rather than restarts: the shared randomness in force, the
/// requests answered so far, and the last acknowledged correlation id.
#[derive(Debug)]
struct ServeProgress {
    shared: SharedRandomness,
    requests: u64,
    last_acked: u64,
}

impl ServeProgress {
    fn fresh(seed: u64) -> Self {
        ServeProgress {
            shared: SharedRandomness::new(seed),
            requests: 0,
            last_acked: 0,
        }
    }
}

/// Maps a typed wire rejection onto the [`NetError`] taxonomy.
fn rejection(code: ErrorCode, reason: String) -> NetError {
    match code {
        ErrorCode::Unauthorized => NetError::Unauthorized(reason),
        ErrorCode::WindowExpired => NetError::WindowExpired(reason),
        ErrorCode::Generic | ErrorCode::SlotAttached => NetError::Protocol(reason),
    }
}

/// `true` for failures that mean the connection itself died (the
/// rejoinable case), as opposed to a typed rejection or protocol
/// violation.
fn connection_lost(e: &NetError) -> bool {
    matches!(e, NetError::Io(_) | NetError::Wire(WireError::Io(_)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Payload;
    use crate::request::PlayerRequest;
    use crate::runtime::Transport;
    use std::time::Duration;
    use triad_graph::{Edge, VertexId};

    fn e(a: u32, b: u32) -> Edge {
        Edge::new(VertexId(a), VertexId(b))
    }

    fn cfg(k: usize) -> ServeConfig {
        ServeConfig {
            k,
            n: 4,
            seed: 11,
            cost_model: CostModel::Coordinator,
            protocol: "unrestricted".into(),
            params: "eps=0.5".into(),
        }
    }

    #[test]
    fn full_session_roundtrip_with_reseed_and_goodbye() {
        let coordinator = TcpCoordinator::bind("127.0.0.1:0").unwrap();
        let addr = coordinator.local_addr().unwrap();
        let shares = [vec![e(0, 1), e(1, 2)], vec![e(0, 2)]];
        let players: Vec<_> = (0..2u32)
            .map(|j| {
                let share = shares[j as usize].clone();
                std::thread::spawn(move || {
                    // Player 1 claims its slot explicitly, player 0 takes
                    // the free one.
                    let slot = (j == 1).then_some(1);
                    let session =
                        PlayerSession::connect(addr, slot, Duration::from_secs(10)).unwrap();
                    let w = session.welcome().clone();
                    assert_eq!(w.k, 2);
                    assert_eq!(w.protocol, "unrestricted");
                    let state = PlayerState::new(w.player as usize, w.n as usize, &share);
                    session.serve(&state, |_, _| SimMessage::empty()).unwrap()
                })
            })
            .collect();
        let mut transport = coordinator
            .accept_players(&cfg(2), Duration::from_secs(10))
            .unwrap();
        assert_eq!(transport.k(), 2);
        assert_eq!(
            transport.try_deliver(0, &PlayerRequest::HasEdge(e(0, 1))),
            Ok(Payload::Bit(true))
        );
        assert_eq!(
            transport.try_deliver(1, &PlayerRequest::HasEdge(e(0, 1))),
            Ok(Payload::Bit(false))
        );
        transport.adopt_shared(SharedRandomness::new(99));
        assert_eq!(
            transport.try_deliver(1, &PlayerRequest::LocalEdgeCount),
            Ok(Payload::Count(1))
        );
        let sims = transport.collect_sim_messages().unwrap();
        assert_eq!(sims.len(), 2);
        transport.goodbye("accepted (no triangle found)");
        let mut summaries: Vec<_> = players.into_iter().map(|h| h.join().unwrap()).collect();
        summaries.sort_by_key(|s| s.requests);
        for s in &summaries {
            assert_eq!(s.farewell.as_deref(), Some("accepted (no triangle found)"));
        }
        // 2 + 1 deliveries and one sim request each.
        assert_eq!(summaries[0].requests + summaries[1].requests, 3 + 2);
    }

    #[test]
    fn bad_slot_claims_are_rejected_without_killing_the_run() {
        let coordinator = TcpCoordinator::bind("127.0.0.1:0").unwrap();
        let addr = coordinator.local_addr().unwrap();
        let accept = std::thread::spawn(move || {
            coordinator.accept_players(&cfg(2), Duration::from_secs(10))
        });
        // Out of range.
        let err = PlayerSession::connect(addr, Some(5), Duration::from_secs(10)).unwrap_err();
        assert!(
            matches!(&err, NetError::Protocol(r) if r.contains("out of range")),
            "{err}"
        );
        // Valid explicit claim.
        let a = PlayerSession::connect(addr, Some(0), Duration::from_secs(10)).unwrap();
        assert_eq!(a.welcome().player, 0);
        // Duplicate claim.
        let err = PlayerSession::connect(addr, Some(0), Duration::from_secs(10)).unwrap_err();
        assert!(
            matches!(&err, NetError::Protocol(r) if r.contains("already taken")),
            "{err}"
        );
        // Free-slot claim completes the set.
        let b = PlayerSession::connect(addr, None, Duration::from_secs(10)).unwrap();
        assert_eq!(b.welcome().player, 1);
        let transport = accept.join().unwrap().unwrap();
        assert_eq!(transport.k(), 2);
    }

    #[test]
    fn malformed_hello_battery_never_kills_the_listener() {
        use std::io::Write;
        let coordinator = TcpCoordinator::bind("127.0.0.1:0").unwrap();
        let addr = coordinator.local_addr().unwrap();
        let accept = std::thread::spawn(move || {
            coordinator.accept_players(&cfg(1), Duration::from_secs(10))
        });
        // (a) Pure garbage instead of a frame.
        let mut garbage = TcpStream::connect(addr).unwrap();
        garbage.write_all(&[0xFF; 32]).unwrap();
        drop(garbage);
        // (b) A truncated frame: a length prefix promising 100 bytes,
        // then a hangup three bytes in.
        let mut truncated = TcpStream::connect(addr).unwrap();
        truncated.write_all(&100u32.to_le_bytes()).unwrap();
        truncated.write_all(&[1, 2, 3]).unwrap();
        drop(truncated);
        // (c) Hangup before sending anything at all.
        drop(TcpStream::connect(addr).unwrap());
        // (d) A well-formed frame of the wrong type.
        let mut wrong = TcpStream::connect(addr).unwrap();
        wire::write_frame(&mut wrong, &WireMessage::Ack).unwrap();
        match wire::read_frame(&mut wrong).unwrap() {
            WireMessage::Error { reason, .. } => {
                assert!(reason.contains("expected hello"), "{reason}")
            }
            other => panic!("expected error frame, got {}", other.kind()),
        }
        drop(wrong);
        // (e) A real player still registers and the run completes.
        let share = vec![e(0, 1)];
        let player = std::thread::spawn(move || {
            let session = PlayerSession::connect(addr, None, Duration::from_secs(10)).unwrap();
            let state = PlayerState::new(0, 4, &share);
            session.serve(&state, |_, _| SimMessage::empty()).unwrap()
        });
        let mut transport = accept.join().unwrap().expect("listener must survive");
        assert_eq!(
            transport.try_deliver(0, &PlayerRequest::HasEdge(e(0, 1))),
            Ok(Payload::Bit(true))
        );
        transport.goodbye("done");
        assert_eq!(player.join().unwrap().requests, 1);
    }

    #[test]
    fn duplicate_slot_raw_frames_get_typed_rejections() {
        let coordinator = TcpCoordinator::bind("127.0.0.1:0").unwrap();
        let addr = coordinator.local_addr().unwrap();
        let accept = std::thread::spawn(move || {
            coordinator.accept_players(&cfg(2), Duration::from_secs(10))
        });
        // First raw claimant takes slot 0.
        let mut first = TcpStream::connect(addr).unwrap();
        wire::write_frame(
            &mut first,
            &WireMessage::Hello {
                slot: Some(0),
                token: None,
                resume: None,
            },
        )
        .unwrap();
        match wire::read_frame(&mut first).unwrap() {
            WireMessage::Welcome(w) => assert_eq!(w.player, 0),
            other => panic!("expected welcome, got {}", other.kind()),
        }
        // Second claimant of the same slot gets an Error frame, not a
        // dead listener.
        let mut dup = TcpStream::connect(addr).unwrap();
        wire::write_frame(
            &mut dup,
            &WireMessage::Hello {
                slot: Some(0),
                token: None,
                resume: None,
            },
        )
        .unwrap();
        match wire::read_frame(&mut dup).unwrap() {
            WireMessage::Error { reason, .. } => {
                assert!(reason.contains("already taken"), "{reason}")
            }
            other => panic!("expected error frame, got {}", other.kind()),
        }
        drop(dup);
        // Slot 1 completes the census.
        let mut second = TcpStream::connect(addr).unwrap();
        wire::write_frame(
            &mut second,
            &WireMessage::Hello {
                slot: Some(1),
                token: None,
                resume: None,
            },
        )
        .unwrap();
        match wire::read_frame(&mut second).unwrap() {
            WireMessage::Welcome(w) => assert_eq!(w.player, 1),
            other => panic!("expected welcome, got {}", other.kind()),
        }
        let transport = accept.join().unwrap().expect("listener must survive");
        assert_eq!(transport.k(), 2);
    }

    #[test]
    fn hangup_after_hello_degrades_typed_never_panics() {
        // A dialer that sends a valid Hello and vanishes: depending on
        // socket timing the Welcome write either fails (the dialer is
        // rejected and the census times out) or lands in the kernel
        // buffer (the census completes over a dead connection and the
        // first delivery surfaces a typed RunError). Both are survival;
        // neither is a panic.
        let coordinator = TcpCoordinator::bind("127.0.0.1:0").unwrap();
        let addr = coordinator.local_addr().unwrap();
        let accept = std::thread::spawn(move || {
            coordinator.accept_players(&cfg(1), Duration::from_millis(400))
        });
        let mut ghost = TcpStream::connect(addr).unwrap();
        wire::write_frame(
            &mut ghost,
            &WireMessage::Hello {
                slot: Some(0),
                token: None,
                resume: None,
            },
        )
        .unwrap();
        drop(ghost);
        match accept.join().unwrap() {
            Ok(mut transport) => {
                // unwrap_err: the dead connection must fail *typed*.
                transport
                    .try_deliver(0, &PlayerRequest::LocalEdgeCount)
                    .unwrap_err();
            }
            Err(NetError::Protocol(census)) => {
                assert!(census.contains("players"), "{census}");
            }
            Err(other) => panic!("expected census timeout, got {other}"),
        }
    }

    #[test]
    fn accept_times_out_with_a_player_census() {
        let coordinator = TcpCoordinator::bind("127.0.0.1:0").unwrap();
        let err = coordinator
            .accept_players(&cfg(3), Duration::from_millis(60))
            .unwrap_err();
        assert!(
            matches!(&err, NetError::Protocol(r) if r.contains("0/3 players")),
            "{err}"
        );
    }

    #[test]
    fn census_timeout_names_registered_and_missing_slots() {
        let coordinator = TcpCoordinator::bind("127.0.0.1:0").unwrap();
        let addr = coordinator.local_addr().unwrap();
        let holder = std::thread::spawn(move || {
            // Fill slot 1 only, then hold the connection open so the
            // census report sees it registered.
            let session = PlayerSession::connect(addr, Some(1), Duration::from_secs(10)).unwrap();
            std::thread::sleep(Duration::from_millis(600));
            drop(session);
        });
        let err = coordinator
            .accept_players(&cfg(3), Duration::from_millis(300))
            .unwrap_err();
        assert!(
            matches!(&err, NetError::Protocol(r) if r.contains("1/3 players")
                && r.contains("registered slots [1]")
                && r.contains("missing [0, 2]")),
            "{err}"
        );
        holder.join().unwrap();
    }

    #[test]
    fn net_error_display_and_source_pin_operator_messages() {
        use std::error::Error as _;
        let io = NetError::Io(std::io::Error::other("boom"));
        assert_eq!(io.to_string(), "network error: boom");
        assert!(io.source().is_some());
        let wire_err = NetError::Wire(WireError::Protocol("bad frame".into()));
        assert_eq!(
            wire_err.to_string(),
            "wire error: protocol violation: bad frame"
        );
        assert!(wire_err.source().is_some());
        let proto = NetError::Protocol("slot 3 already taken".into());
        assert_eq!(proto.to_string(), "session error: slot 3 already taken");
        assert!(proto.source().is_none());
        let unauthorized = NetError::Unauthorized("invalid or missing auth token".into());
        assert_eq!(
            unauthorized.to_string(),
            "unauthorized: invalid or missing auth token"
        );
        assert!(unauthorized.source().is_none());
        let expired =
            NetError::WindowExpired("slot 0 reconnect window (250 ms) has expired".into());
        assert_eq!(
            expired.to_string(),
            "reconnect window expired: slot 0 reconnect window (250 ms) has expired"
        );
        assert!(expired.source().is_none());
    }

    #[test]
    fn token_matching_is_exact_and_constant_time_eq_is_total() {
        assert!(token_ok(None, None));
        assert!(token_ok(None, Some("anything")));
        assert!(!token_ok(Some("secret"), None));
        assert!(!token_ok(Some("secret"), Some("secret2")));
        assert!(!token_ok(Some("secret2"), Some("secret")));
        assert!(!token_ok(Some("secret"), Some("")));
        assert!(token_ok(Some("secret"), Some("secret")));
        assert!(constant_time_eq(b"", b""));
        assert!(!constant_time_eq(b"", b"x"));
        assert!(!constant_time_eq(b"x", b""));
    }

    #[test]
    fn backoff_doubles_and_saturates_at_the_cap() {
        let opts = ConnectOptions {
            backoff: Duration::from_millis(50),
            ..ConnectOptions::default()
        };
        assert_eq!(opts.backoff_for(0), Duration::from_millis(50));
        assert_eq!(opts.backoff_for(1), Duration::from_millis(100));
        assert_eq!(opts.backoff_for(2), Duration::from_millis(200));
        assert_eq!(opts.backoff_for(10), ConnectOptions::MAX_BACKOFF);
        assert_eq!(opts.backoff_for(u32::MAX), ConnectOptions::MAX_BACKOFF);
    }

    #[test]
    fn auth_token_gates_registration_with_typed_rejections() {
        let coordinator = TcpCoordinator::bind("127.0.0.1:0").unwrap();
        let addr = coordinator.local_addr().unwrap();
        let options = SessionOptions {
            auth_token: Some("hunter2".into()),
            reconnect_window: Duration::ZERO,
        };
        let accept = std::thread::spawn(move || {
            coordinator.accept_players_with(&cfg(1), Duration::from_secs(10), &options)
        });
        // Wrong token.
        let err = PlayerSession::connect_with(
            addr,
            &ConnectOptions {
                token: Some("wrong".into()),
                ..ConnectOptions::default()
            },
        )
        .unwrap_err();
        assert!(
            matches!(&err, NetError::Unauthorized(r) if r.contains("auth token")),
            "{err}"
        );
        // Missing token.
        let err = PlayerSession::connect(addr, None, Duration::from_secs(10)).unwrap_err();
        assert!(matches!(&err, NetError::Unauthorized(_)), "{err}");
        // Correct token registers — the listener survived both rejects.
        let session = PlayerSession::connect_with(
            addr,
            &ConnectOptions {
                token: Some("hunter2".into()),
                ..ConnectOptions::default()
            },
        )
        .unwrap();
        assert_eq!(session.welcome().player, 0);
        let transport = accept.join().unwrap().expect("listener must survive");
        assert_eq!(transport.k(), 1);
    }

    #[test]
    fn resume_claims_during_census_are_rejected_typed() {
        let coordinator = TcpCoordinator::bind("127.0.0.1:0").unwrap();
        let addr = coordinator.local_addr().unwrap();
        let accept = std::thread::spawn(move || {
            coordinator.accept_players(&cfg(1), Duration::from_secs(10))
        });
        let err = PlayerSession::rejoin_with(
            addr,
            &ConnectOptions::default(),
            ResumeClaim {
                slot: 0,
                nonce: 42,
                last_acked: 0,
            },
        )
        .unwrap_err();
        assert!(
            matches!(&err, NetError::Unauthorized(r) if r.contains("census is still open")),
            "{err}"
        );
        let _session = PlayerSession::connect(addr, None, Duration::from_secs(10)).unwrap();
        accept.join().unwrap().expect("listener must survive");
    }

    #[test]
    fn welcome_nonce_is_zero_without_a_reconnect_window() {
        let coordinator = TcpCoordinator::bind("127.0.0.1:0").unwrap();
        let addr = coordinator.local_addr().unwrap();
        let player = std::thread::spawn(move || {
            let session = PlayerSession::connect(addr, None, Duration::from_secs(10)).unwrap();
            session.welcome().clone()
        });
        let _transport = coordinator
            .accept_players(&cfg(1), Duration::from_secs(10))
            .unwrap();
        assert_eq!(player.join().unwrap().resume_nonce, 0);
    }

    #[test]
    fn refused_dials_are_retried_with_bounded_backoff() {
        // Reserve a port, then free it so the first dials are refused.
        let placeholder = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = placeholder.local_addr().unwrap();
        drop(placeholder);
        let started = Instant::now();
        let err = PlayerSession::connect_with(
            addr,
            &ConnectOptions {
                retries: 2,
                backoff: Duration::from_millis(20),
                timeout: Duration::from_secs(1),
                ..ConnectOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(&err, NetError::Io(_)), "{err}");
        // Two retries at 20 ms and 40 ms: at least 60 ms were slept.
        assert!(started.elapsed() >= Duration::from_millis(60));
        // A daemon that comes up late is absorbed by the same loop —
        // the fix for clients racing `--port-file` publication.
        let late = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(120));
            let coordinator = TcpCoordinator::bind(addr).unwrap();
            coordinator.accept_players(&cfg(1), Duration::from_secs(10))
        });
        let session = PlayerSession::connect_with(
            addr,
            &ConnectOptions {
                retries: 40,
                backoff: Duration::from_millis(25),
                ..ConnectOptions::default()
            },
        )
        .unwrap();
        assert_eq!(session.welcome().player, 0);
        late.join().unwrap().expect("census must complete");
    }

    /// Session options with a reconnect window and no auth token.
    fn windowed(ms: u64) -> SessionOptions {
        SessionOptions {
            auth_token: None,
            reconnect_window: Duration::from_millis(ms),
        }
    }

    #[test]
    fn detached_player_rejoins_within_window_and_delivery_replays() {
        let coordinator = TcpCoordinator::bind("127.0.0.1:0").unwrap();
        let addr = coordinator.local_addr().unwrap();
        let share = vec![e(0, 1), e(1, 2)];
        let (nonce_tx, nonce_rx) = std::sync::mpsc::channel();
        let first_share = share.clone();
        let first = std::thread::spawn(move || {
            let session = PlayerSession::connect(addr, None, Duration::from_secs(10)).unwrap();
            let w = session.welcome().clone();
            nonce_tx.send((w.player, w.resume_nonce)).unwrap();
            let state = PlayerState::new(w.player as usize, 4, &first_share);
            // Answer exactly one request, then walk away (drops the
            // connection).
            session
                .serve_until(&state, |_, _| SimMessage::empty(), Some(1))
                .unwrap()
        });
        let mut transport = coordinator
            .accept_players_with(&cfg(1), Duration::from_secs(10), &windowed(10_000))
            .unwrap();
        let (slot, nonce) = nonce_rx.recv().unwrap();
        assert_ne!(nonce, 0, "a windowed daemon must issue a live nonce");
        assert_eq!(
            transport.try_deliver(0, &PlayerRequest::HasEdge(e(0, 1))),
            Ok(Payload::Bit(true))
        );
        first.join().unwrap();
        // The second incarnation presents the nonce and serves to the
        // goodbye; the interrupted delivery below replays onto it.
        let second = std::thread::spawn(move || {
            let session = PlayerSession::rejoin_with(
                addr,
                &ConnectOptions {
                    retries: 20,
                    backoff: Duration::from_millis(10),
                    ..ConnectOptions::default()
                },
                ResumeClaim {
                    slot,
                    nonce,
                    last_acked: 1,
                },
            )
            .unwrap();
            let state = PlayerState::new(slot as usize, 4, &share);
            session.serve(&state, |_, _| SimMessage::empty()).unwrap()
        });
        assert_eq!(
            transport.try_deliver(0, &PlayerRequest::LocalEdgeCount),
            Ok(Payload::Count(2))
        );
        transport.goodbye("done");
        let summary = second.join().unwrap();
        assert_eq!(summary.farewell.as_deref(), Some("done"));
    }

    #[test]
    fn rejoins_with_bad_credentials_are_rejected_and_the_run_still_recovers() {
        let coordinator = TcpCoordinator::bind("127.0.0.1:0").unwrap();
        let addr = coordinator.local_addr().unwrap();
        let token = || Some("hunter2".to_string());
        let options = SessionOptions {
            auth_token: token(),
            reconnect_window: Duration::from_millis(10_000),
        };
        let share = vec![e(0, 1)];
        let (nonce_tx, nonce_rx) = std::sync::mpsc::channel();
        let first_share = share.clone();
        let first = std::thread::spawn(move || {
            let session = PlayerSession::connect_with(
                addr,
                &ConnectOptions {
                    token: Some("hunter2".into()),
                    ..ConnectOptions::default()
                },
            )
            .unwrap();
            let w = session.welcome().clone();
            nonce_tx.send((w.player, w.resume_nonce)).unwrap();
            let state = PlayerState::new(w.player as usize, 4, &first_share);
            session
                .serve_until(&state, |_, _| SimMessage::empty(), Some(1))
                .unwrap()
        });
        let mut transport = coordinator
            .accept_players_with(&cfg(1), Duration::from_secs(10), &options)
            .unwrap();
        let (slot, nonce) = nonce_rx.recv().unwrap();
        assert_eq!(
            transport.try_deliver(0, &PlayerRequest::HasEdge(e(0, 1))),
            Ok(Payload::Bit(true))
        );
        first.join().unwrap();
        // Two invalid claimants queue up before any valid one: a wrong
        // nonce (right token) and a wrong token (right nonce). Both must
        // be answered with typed Unauthorized frames — and the slot must
        // still be rejoinable afterwards.
        let mut bad_nonce = TcpStream::connect(addr).unwrap();
        wire::write_frame(
            &mut bad_nonce,
            &WireMessage::Hello {
                slot: None,
                token: token(),
                resume: Some(ResumeClaim {
                    slot,
                    nonce: nonce.wrapping_add(1),
                    last_acked: 1,
                }),
            },
        )
        .unwrap();
        let mut bad_token = TcpStream::connect(addr).unwrap();
        wire::write_frame(
            &mut bad_token,
            &WireMessage::Hello {
                slot: None,
                token: Some("wrong".into()),
                resume: Some(ResumeClaim {
                    slot,
                    nonce,
                    last_acked: 1,
                }),
            },
        )
        .unwrap();
        let second = std::thread::spawn(move || {
            let session = PlayerSession::rejoin_with(
                addr,
                &ConnectOptions {
                    token: Some("hunter2".into()),
                    retries: 20,
                    backoff: Duration::from_millis(10),
                    ..ConnectOptions::default()
                },
                ResumeClaim {
                    slot,
                    nonce,
                    last_acked: 1,
                },
            )
            .unwrap();
            let state = PlayerState::new(slot as usize, 4, &share);
            session.serve(&state, |_, _| SimMessage::empty()).unwrap()
        });
        assert_eq!(
            transport.try_deliver(0, &PlayerRequest::LocalEdgeCount),
            Ok(Payload::Count(1))
        );
        for (stream, expect) in [
            (&mut bad_nonce, "invalid resume nonce"),
            (&mut bad_token, "auth token"),
        ] {
            stream
                .set_read_timeout(Some(Duration::from_secs(5)))
                .unwrap();
            match wire::read_frame(stream).unwrap() {
                WireMessage::Error { code, reason } => {
                    assert_eq!(code, ErrorCode::Unauthorized, "{reason}");
                    assert!(reason.contains(expect), "{reason}");
                }
                other => panic!("expected error frame, got {}", other.kind()),
            }
        }
        transport.goodbye("done");
        let summary = second.join().unwrap();
        assert_eq!(summary.farewell.as_deref(), Some("done"));
    }

    #[test]
    fn duplicate_rejoin_race_has_exactly_one_winner() {
        let coordinator = TcpCoordinator::bind("127.0.0.1:0").unwrap();
        let addr = coordinator.local_addr().unwrap();
        let (nonce_tx, nonce_rx) = std::sync::mpsc::channel();
        let share = vec![e(0, 1), e(0, 2), e(1, 2)];
        let first = std::thread::spawn(move || {
            let session = PlayerSession::connect(addr, None, Duration::from_secs(10)).unwrap();
            let w = session.welcome().clone();
            nonce_tx.send((w.player, w.resume_nonce)).unwrap();
            let state = PlayerState::new(w.player as usize, 4, &share);
            session
                .serve_until(&state, |_, _| SimMessage::empty(), Some(1))
                .unwrap()
        });
        let mut transport = coordinator
            .accept_players_with(&cfg(1), Duration::from_secs(10), &windowed(10_000))
            .unwrap();
        let (slot, nonce) = nonce_rx.recv().unwrap();
        assert_eq!(
            transport.try_deliver(0, &PlayerRequest::LocalEdgeCount),
            Ok(Payload::Count(3))
        );
        first.join().unwrap();
        // Two claimants present the same valid claim before the
        // coordinator notices the disconnect. Exactly one must win the
        // slot; the other must get a typed SlotAttached rejection in the
        // same drain.
        let claim = ResumeClaim {
            slot,
            nonce,
            last_acked: 1,
        };
        let hello = WireMessage::Hello {
            slot: None,
            token: None,
            resume: Some(claim),
        };
        let mut a = TcpStream::connect(addr).unwrap();
        wire::write_frame(&mut a, &hello).unwrap();
        let mut b = TcpStream::connect(addr).unwrap();
        wire::write_frame(&mut b, &hello).unwrap();
        let servicer = std::thread::spawn(move || {
            for s in [&mut a, &mut b] {
                s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            }
            let first_frame = wire::read_frame(&mut a).unwrap();
            let second_frame = wire::read_frame(&mut b).unwrap();
            let (mut winner, frames) = match (first_frame, second_frame) {
                (WireMessage::Welcome(_), loser) => (a, loser),
                (loser, WireMessage::Welcome(_)) => (b, loser),
                (x, y) => panic!(
                    "expected exactly one welcome, got {} and {}",
                    x.kind(),
                    y.kind()
                ),
            };
            match frames {
                WireMessage::Error { code, reason } => {
                    assert_eq!(code, ErrorCode::SlotAttached, "{reason}");
                    assert!(reason.contains("still attached"), "{reason}");
                }
                other => panic!("loser expected SlotAttached, got {}", other.kind()),
            }
            // The winner answers the replayed request.
            match wire::read_frame(&mut winner).unwrap() {
                WireMessage::Request { id, .. } => {
                    wire::write_frame(
                        &mut winner,
                        &WireMessage::Response {
                            id,
                            payload: Payload::Count(3),
                        },
                    )
                    .unwrap();
                }
                other => panic!("winner expected request, got {}", other.kind()),
            }
            winner
        });
        assert_eq!(
            transport.try_deliver(0, &PlayerRequest::LocalEdgeCount),
            Ok(Payload::Count(3))
        );
        drop(servicer.join().unwrap());
    }

    #[test]
    fn window_expiry_degrades_typed_and_late_claimants_learn_it() {
        let coordinator = TcpCoordinator::bind("127.0.0.1:0").unwrap();
        let addr = coordinator.local_addr().unwrap();
        let (nonce_tx, nonce_rx) = std::sync::mpsc::channel();
        let share = vec![e(0, 1)];
        let first = std::thread::spawn(move || {
            let session = PlayerSession::connect(addr, None, Duration::from_secs(10)).unwrap();
            let w = session.welcome().clone();
            nonce_tx.send((w.player, w.resume_nonce)).unwrap();
            let state = PlayerState::new(w.player as usize, 4, &share);
            session
                .serve_until(&state, |_, _| SimMessage::empty(), Some(1))
                .unwrap()
        });
        let mut transport = coordinator
            .accept_players_with(&cfg(1), Duration::from_secs(10), &windowed(250))
            .unwrap();
        let (slot, nonce) = nonce_rx.recv().unwrap();
        assert_eq!(
            transport.try_deliver(0, &PlayerRequest::HasEdge(e(0, 1))),
            Ok(Payload::Bit(true))
        );
        first.join().unwrap();
        // Nobody rejoins: the delivery waits out the window and degrades
        // with a typed Aborted naming the expiry and the original cause.
        let err = transport
            .try_deliver(0, &PlayerRequest::LocalEdgeCount)
            .unwrap_err();
        match &err {
            crate::runtime::RunError::Aborted { reason } => {
                assert!(reason.contains("reconnect window expired"), "{reason}");
                assert!(reason.contains("player 0"), "{reason}");
            }
            other => panic!("expected aborted, got {other}"),
        }
        // A claimant arriving after expiry — with perfectly valid
        // credentials — is answered with a typed WindowExpired frame by
        // the next delivery attempt's poll.
        let mut late = TcpStream::connect(addr).unwrap();
        wire::write_frame(
            &mut late,
            &WireMessage::Hello {
                slot: None,
                token: None,
                resume: Some(ResumeClaim {
                    slot,
                    nonce,
                    last_acked: 1,
                }),
            },
        )
        .unwrap();
        transport
            .try_deliver(0, &PlayerRequest::LocalEdgeCount)
            .unwrap_err();
        late.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        match wire::read_frame(&mut late).unwrap() {
            WireMessage::Error { code, reason } => {
                assert_eq!(code, ErrorCode::WindowExpired, "{reason}");
                assert!(reason.contains("expired"), "{reason}");
            }
            other => panic!("expected error frame, got {}", other.kind()),
        }
    }

    #[test]
    fn serve_rejoining_survives_a_dropped_connection_transparently() {
        let coordinator = TcpCoordinator::bind("127.0.0.1:0").unwrap();
        let addr = coordinator.local_addr().unwrap();
        let share = vec![e(0, 1), e(1, 2)];
        let player = std::thread::spawn(move || {
            let opts = ConnectOptions {
                retries: 20,
                backoff: Duration::from_millis(10),
                ..ConnectOptions::default()
            };
            let session = PlayerSession::connect_with(addr, &opts).unwrap();
            let state = PlayerState::new(session.welcome().player as usize, 4, &share);
            session
                .serve_rejoining(addr, &opts, &state, |_, _| SimMessage::empty())
                .unwrap()
        });
        let mut transport = coordinator
            .accept_players_with(&cfg(1), Duration::from_secs(10), &windowed(10_000))
            .unwrap();
        assert_eq!(
            transport.try_deliver(0, &PlayerRequest::HasEdge(e(0, 1))),
            Ok(Payload::Bit(true))
        );
        // Sever the connection out from under the player by replacing
        // its slot with a detached marker: the player sees EOF and
        // rejoins via its resume nonce; the coordinator welcomes it on
        // the next delivery and replays.
        transport.sever_for_test(0);
        // A reseed while the player is detached must travel in the
        // rejoin Welcome, not be lost with the dead connection.
        transport.adopt_shared(SharedRandomness::new(4242));
        assert_eq!(
            transport.try_deliver(0, &PlayerRequest::LocalEdgeCount),
            Ok(Payload::Count(2))
        );
        transport.goodbye("accepted");
        let summary = player.join().unwrap();
        assert_eq!(summary.farewell.as_deref(), Some("accepted"));
        assert_eq!(summary.rejoins, 1);
    }
}
