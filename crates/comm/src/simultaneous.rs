//! The simultaneous (one-round) communication framework.
//!
//! Each player computes a single message from its input and the shared
//! randomness; the referee sees only the messages. This is the
//! communication analog of oblivious property testers, and the model of
//! the paper's §3.4 protocols and §4.2.3 lower bound.

use crate::bits::BitCost;
use crate::message::Payload;
use crate::player::{players_from_shares, PlayerState};
use crate::rand::SharedRandomness;
use crate::transcript::{CommStats, Direction, Transcript, DEFAULT_PHASE};
use triad_graph::Edge;

/// A player's one-shot message: an ordered list of payloads, each tagged
/// with the protocol phase that produced it (so one-round transcripts
/// still get per-phase cost attribution).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SimMessage {
    payloads: Vec<Payload>,
    phases: Vec<&'static str>,
}

impl SimMessage {
    /// The empty message (what irrelevant players send).
    pub fn empty() -> Self {
        SimMessage::default()
    }

    /// A message with one payload under the default phase.
    pub fn of(p: Payload) -> Self {
        SimMessage::of_phased(p, DEFAULT_PHASE)
    }

    /// A message with one payload attributed to `phase`.
    pub fn of_phased(p: Payload, phase: &'static str) -> Self {
        SimMessage {
            payloads: vec![p],
            phases: vec![phase],
        }
    }

    /// Appends a payload under the default phase.
    pub fn push(&mut self, p: Payload) {
        self.push_phased(p, DEFAULT_PHASE);
    }

    /// Appends a payload attributed to `phase`.
    pub fn push_phased(&mut self, p: Payload, phase: &'static str) {
        self.payloads.push(p);
        self.phases.push(phase);
    }

    /// The payloads in order.
    pub fn payloads(&self) -> &[Payload] {
        &self.payloads
    }

    /// The per-payload phase tags, parallel to
    /// [`payloads`](Self::payloads).
    pub fn phases(&self) -> &[&'static str] {
        &self.phases
    }

    /// Total bit cost in a graph on `n` vertices.
    pub fn bit_len(&self, n: usize) -> BitCost {
        self.payloads.iter().map(|p| p.bit_len(n)).sum()
    }

    /// All edges carried anywhere in the message.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.payloads
            .iter()
            .flat_map(|p| p.as_edges().iter().copied())
    }
}

/// A one-round protocol: per-player message function plus referee.
pub trait SimultaneousProtocol {
    /// What the referee outputs.
    type Output;

    /// The message player `j` sends, computed from its private input and
    /// the public randomness only.
    fn message(&self, player: &PlayerState, shared: &SharedRandomness) -> SimMessage;

    /// The referee's aggregation of all `k` messages.
    fn referee(&self, n: usize, messages: &[SimMessage], shared: &SharedRandomness)
        -> Self::Output;
}

/// The result of one simultaneous execution.
#[derive(Debug, Clone)]
pub struct SimRun<O> {
    /// The referee's output.
    pub output: O,
    /// Communication statistics (1 round; total = Σ message bits).
    pub stats: CommStats,
    /// Bits sent by each player.
    pub per_player_bits: Vec<u64>,
    /// Per-payload event log: one `ToCoordinator` event per payload sent,
    /// tagged with the payload's phase.
    pub transcript: Transcript,
}

/// Runs a simultaneous protocol sequentially.
pub fn run_simultaneous<P: SimultaneousProtocol>(
    protocol: &P,
    n: usize,
    shares: &[Vec<Edge>],
    shared: SharedRandomness,
) -> SimRun<P::Output> {
    let players = players_from_shares(n, shares);
    let messages: Vec<SimMessage> = players
        .iter()
        .map(|p| protocol.message(p, &shared))
        .collect();
    finish(protocol, n, messages, shared)
}

/// Runs a simultaneous protocol with every player's message computed on
/// its own thread — identical output and identical cost to
/// [`run_simultaneous`], demonstrating that the messages really depend on
/// private input and shared randomness alone.
pub fn run_simultaneous_threaded<P>(
    protocol: &P,
    n: usize,
    shares: &[Vec<Edge>],
    shared: SharedRandomness,
) -> SimRun<P::Output>
where
    P: SimultaneousProtocol + Sync,
{
    let players = players_from_shares(n, shares);
    let messages: Vec<SimMessage> = std::thread::scope(|scope| {
        let handles: Vec<_> = players
            .iter()
            .map(|p| scope.spawn(move || protocol.message(p, &shared)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("player thread panicked"))
            .collect()
    });
    finish(protocol, n, messages, shared)
}

fn finish<P: SimultaneousProtocol>(
    protocol: &P,
    n: usize,
    messages: Vec<SimMessage>,
    shared: SharedRandomness,
) -> SimRun<P::Output> {
    let per_player_bits: Vec<u64> = messages.iter().map(|m| m.bit_len(n).get()).collect();
    let total: u64 = per_player_bits.iter().sum();
    let mut transcript = Transcript::new(messages.len());
    for (j, m) in messages.iter().enumerate() {
        for (payload, phase) in m.payloads().iter().zip(m.phases()) {
            transcript.set_phase(phase);
            transcript.record(Some(j), Direction::ToCoordinator, payload.bit_len(n), phase);
        }
    }
    let output = protocol.referee(n, &messages, &shared);
    SimRun {
        output,
        stats: CommStats {
            total_bits: total,
            rounds: 1,
            messages: messages.len() as u64,
            max_player_sent_bits: per_player_bits.iter().copied().max().unwrap_or(0),
        },
        per_player_bits,
        transcript,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triad_graph::VertexId;

    /// Toy protocol: everyone sends their full input; referee counts
    /// distinct edges.
    struct SendAll;

    impl SimultaneousProtocol for SendAll {
        type Output = usize;

        fn message(&self, player: &PlayerState, _shared: &SharedRandomness) -> SimMessage {
            SimMessage::of(Payload::Edges(player.edges().copied().collect()))
        }

        fn referee(&self, _n: usize, messages: &[SimMessage], _shared: &SharedRandomness) -> usize {
            let mut set = std::collections::HashSet::new();
            for m in messages {
                set.extend(m.edges());
            }
            set.len()
        }
    }

    fn e(a: u32, b: u32) -> Edge {
        Edge::new(VertexId(a), VertexId(b))
    }

    #[test]
    fn runs_and_charges() {
        let shares = vec![vec![e(0, 1), e(1, 2)], vec![e(1, 2)]];
        let run = run_simultaneous(&SendAll, 4, &shares, SharedRandomness::new(1));
        assert_eq!(run.output, 2);
        assert_eq!(run.stats.rounds, 1);
        assert_eq!(run.stats.messages, 2);
        // n=4: 2 bits/vertex, 4/edge; msg1 = prefix(2=2 bits)+8, msg2 = prefix(1 bit)+4
        assert_eq!(run.per_player_bits, vec![2 + 8, 1 + 4]);
        assert_eq!(run.stats.total_bits, 15);
        assert_eq!(run.stats.max_player_sent_bits, 10);
    }

    #[test]
    fn threaded_matches_sequential() {
        let shares = vec![vec![e(0, 1)], vec![e(1, 2)], vec![e(0, 2)]];
        let shared = SharedRandomness::new(9);
        let a = run_simultaneous(&SendAll, 3, &shares, shared);
        let b = run_simultaneous_threaded(&SendAll, 3, &shares, shared);
        assert_eq!(a.output, b.output);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.per_player_bits, b.per_player_bits);
    }

    #[test]
    fn transcript_partitions_message_bits_by_phase() {
        struct TwoPhase;
        impl SimultaneousProtocol for TwoPhase {
            type Output = ();
            fn message(&self, player: &PlayerState, _shared: &SharedRandomness) -> SimMessage {
                let mut m = SimMessage::of_phased(
                    Payload::Edges(player.edges().copied().collect()),
                    "induced-sample",
                );
                m.push_phased(Payload::Bit(true), "verdict");
                m
            }
            fn referee(&self, _n: usize, _m: &[SimMessage], _s: &SharedRandomness) {}
        }
        let shares = vec![vec![e(0, 1), e(1, 2)], vec![e(1, 2)]];
        let run = run_simultaneous(&TwoPhase, 4, &shares, SharedRandomness::new(1));
        assert_eq!(run.transcript.total_bits().get(), run.stats.total_bits);
        let by_phase = run.transcript.by_phase();
        let phase_sum: u64 = by_phase.iter().map(|r| r.bits).sum();
        assert_eq!(phase_sum, run.stats.total_bits);
        assert_eq!(run.transcript.bits_for_phase("verdict"), 2);
        assert_eq!(
            run.transcript.bits_for_phase("induced-sample"),
            run.stats.total_bits - 2
        );
        let per_player = run.transcript.by_player();
        assert_eq!(per_player.len(), 2);
        assert_eq!(
            per_player[0].bits + per_player[1].bits,
            run.stats.total_bits
        );
    }

    #[test]
    fn sim_message_building() {
        let mut m = SimMessage::empty();
        assert_eq!(m.bit_len(16), BitCost(0));
        m.push(Payload::Bit(true));
        m.push(Payload::Edges(vec![e(0, 1)]));
        assert_eq!(m.payloads().len(), 2);
        assert_eq!(m.edges().count(), 1);
        assert_eq!(m.bit_len(16), BitCost(1 + 1 + 8));
    }
}
