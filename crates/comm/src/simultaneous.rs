//! The simultaneous (one-round) communication framework.
//!
//! Each player computes a single message from its input and the shared
//! randomness; the referee sees only the messages. This is the
//! communication analog of oblivious property testers, and the model of
//! the paper's §3.4 protocols and §4.2.3 lower bound.
//!
//! Messages may *borrow* from the sending player's state: a
//! [`SimMessage<'a>`] carries `Payload<'a>` entries, so a baseline that
//! sends its whole partition does so as a `Cow::Borrowed` slice with no
//! per-run clone (see `docs/RUNTIME.md`). Ownership never needs to cross
//! a boundary here — the referee reads the messages while the players are
//! still alive, even in the threaded driver.

use crate::bits::BitCost;
use crate::message::Payload;
use crate::player::{players_from_shares, PlayerState};
use crate::rand::SharedRandomness;
use crate::recorder::Recorder;
use crate::transcript::{CommStats, Direction, Transcript, DEFAULT_PHASE};
use triad_graph::Edge;

/// A player's one-shot message: an ordered list of payloads, each tagged
/// with the protocol phase that produced it (so one-round transcripts
/// still get per-phase cost attribution). The lifetime `'a` is the
/// sending player's: payloads may borrow its edge share.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SimMessage<'a> {
    payloads: Vec<Payload<'a>>,
    phases: Vec<&'static str>,
}

impl<'a> SimMessage<'a> {
    /// The empty message (what irrelevant players send).
    pub fn empty() -> Self {
        SimMessage::default()
    }

    /// A message with one payload under the default phase.
    pub fn of(p: Payload<'a>) -> Self {
        SimMessage::of_phased(p, DEFAULT_PHASE)
    }

    /// A message with one payload attributed to `phase`.
    pub fn of_phased(p: Payload<'a>, phase: &'static str) -> Self {
        SimMessage {
            payloads: vec![p],
            phases: vec![phase],
        }
    }

    /// Appends a payload under the default phase.
    pub fn push(&mut self, p: Payload<'a>) {
        self.push_phased(p, DEFAULT_PHASE);
    }

    /// Appends a payload attributed to `phase`.
    pub fn push_phased(&mut self, p: Payload<'a>, phase: &'static str) {
        self.payloads.push(p);
        self.phases.push(phase);
    }

    /// The payloads in order.
    pub fn payloads(&self) -> &[Payload<'a>] {
        &self.payloads
    }

    /// The per-payload phase tags, parallel to
    /// [`payloads`](Self::payloads).
    pub fn phases(&self) -> &[&'static str] {
        &self.phases
    }

    /// Total bit cost in a graph on `n` vertices.
    pub fn bit_len(&self, n: usize) -> BitCost {
        self.payloads.iter().map(|p| p.bit_len(n)).sum()
    }

    /// All edges carried anywhere in the message, whatever their
    /// representation — [`Payload::Edges`] lists and
    /// [`Payload::EdgeBits`] bitsets both contribute; non-edge payloads
    /// are legitimately skipped.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.payloads.iter().flat_map(Payload::iter_edges)
    }

    /// Detaches the message from its sender, cloning any borrowed
    /// payloads.
    pub fn into_owned(self) -> SimMessage<'static> {
        SimMessage {
            payloads: self.payloads.into_iter().map(Payload::into_owned).collect(),
            phases: self.phases,
        }
    }
}

/// A one-round protocol: per-player message function plus referee.
pub trait SimultaneousProtocol {
    /// What the referee outputs.
    type Output;

    /// The message player `j` sends, computed from its private input and
    /// the public randomness only. The message may borrow from `player`
    /// (the explicit `'a` ties the two; implementations must spell it
    /// out — eliding would wrongly tie the message to `&self`).
    fn message<'a>(&self, player: &'a PlayerState, shared: &SharedRandomness) -> SimMessage<'a>;

    /// The referee's aggregation of all `k` messages.
    fn referee(&self, n: usize, messages: &[SimMessage], shared: &SharedRandomness)
        -> Self::Output;
}

/// The result of one simultaneous execution, generic over the cost
/// recorder (`R = Transcript` keeps the full event log; `R = Tally` is
/// the counters-only fast path of amplified sweeps).
#[derive(Debug, Clone)]
pub struct SimRun<O, R = Transcript> {
    /// The referee's output.
    pub output: O,
    /// Communication statistics (1 round; total = Σ message bits).
    pub stats: CommStats,
    /// Bits sent by each player.
    pub per_player_bits: Vec<u64>,
    /// The recorder: one `ToCoordinator` charge per payload sent, tagged
    /// with the payload's phase.
    pub transcript: R,
}

/// Runs a simultaneous protocol sequentially, with a full transcript.
pub fn run_simultaneous<P: SimultaneousProtocol>(
    protocol: &P,
    n: usize,
    shares: &[Vec<Edge>],
    shared: SharedRandomness,
) -> SimRun<P::Output> {
    let players = players_from_shares(n, shares);
    run_simultaneous_prepared(protocol, n, &players, shared)
}

/// Runs a simultaneous protocol over **pre-built** player states,
/// recording into any [`Recorder`] — the prepared-input fast path:
/// amplified sweeps build the players once and re-roll only the shared
/// randomness per repetition (see `docs/RUNTIME.md`).
pub fn run_simultaneous_prepared<P: SimultaneousProtocol, R: Recorder>(
    protocol: &P,
    n: usize,
    players: &[PlayerState],
    shared: SharedRandomness,
) -> SimRun<P::Output, R> {
    let messages: Vec<SimMessage> = players
        .iter()
        .map(|p| protocol.message(p, &shared))
        .collect();
    finish(protocol, n, messages, shared)
}

/// Runs a simultaneous protocol with every player's message computed on
/// its own thread — identical output and identical cost to
/// [`run_simultaneous`], demonstrating that the messages really depend on
/// private input and shared randomness alone. The messages still borrow
/// from the players: the scoped threads return borrows into the outer
/// `players` vector, no detaching clone needed.
pub fn run_simultaneous_threaded<P>(
    protocol: &P,
    n: usize,
    shares: &[Vec<Edge>],
    shared: SharedRandomness,
) -> SimRun<P::Output>
where
    P: SimultaneousProtocol + Sync,
{
    let players = players_from_shares(n, shares);
    let messages: Vec<SimMessage> = std::thread::scope(|scope| {
        let handles: Vec<_> = players
            .iter()
            .map(|p| scope.spawn(move || protocol.message(p, &shared)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("player thread panicked"))
            .collect()
    });
    finish(protocol, n, messages, shared)
}

/// Finishes a simultaneous run from **already-collected** messages —
/// the referee-side entry point of networked runs: `triad serve` gathers
/// each player's [`SimMessage`] over its socket (the remote player
/// evaluated [`SimultaneousProtocol::message`] itself) and hands them
/// here. Charging is *identical* to [`run_simultaneous_prepared`]: one
/// `ToCoordinator` charge per payload at the payload's model bit cost,
/// so a fault-free TCP run is byte-identical in its accounting to an
/// in-process run of the same protocol (see `docs/NETWORKING.md`).
pub fn run_simultaneous_collected<P: SimultaneousProtocol, R: Recorder>(
    protocol: &P,
    n: usize,
    messages: Vec<SimMessage<'_>>,
    shared: SharedRandomness,
) -> SimRun<P::Output, R> {
    finish(protocol, n, messages, shared)
}

pub(crate) fn finish<P: SimultaneousProtocol, R: Recorder>(
    protocol: &P,
    n: usize,
    messages: Vec<SimMessage<'_>>,
    shared: SharedRandomness,
) -> SimRun<P::Output, R> {
    let per_player_bits: Vec<u64> = messages.iter().map(|m| m.bit_len(n).get()).collect();
    let total: u64 = per_player_bits.iter().sum();
    let mut transcript = R::with_players(messages.len());
    transcript.reserve_messages(messages.iter().map(|m| m.payloads().len()).sum());
    for (j, m) in messages.iter().enumerate() {
        for (payload, phase) in m.payloads().iter().zip(m.phases()) {
            transcript.set_phase(phase);
            transcript.record(Some(j), Direction::ToCoordinator, payload.bit_len(n), phase);
        }
    }
    let output = protocol.referee(n, &messages, &shared);
    SimRun {
        output,
        stats: CommStats {
            total_bits: total,
            rounds: 1,
            messages: messages.len() as u64,
            max_player_sent_bits: per_player_bits.iter().copied().max().unwrap_or(0),
        },
        per_player_bits,
        transcript,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triad_graph::VertexId;

    /// Toy protocol: everyone sends their full input; referee counts
    /// distinct edges. Exercises the borrowed fast path: the payload is a
    /// `Cow::Borrowed` view of the player's sorted share.
    struct SendAll;

    impl SimultaneousProtocol for SendAll {
        type Output = usize;

        fn message<'a>(
            &self,
            player: &'a PlayerState,
            _shared: &SharedRandomness,
        ) -> SimMessage<'a> {
            SimMessage::of(Payload::Edges(player.share().into()))
        }

        fn referee(&self, _n: usize, messages: &[SimMessage], _shared: &SharedRandomness) -> usize {
            let mut set = std::collections::HashSet::new();
            for m in messages {
                set.extend(m.edges());
            }
            set.len()
        }
    }

    fn e(a: u32, b: u32) -> Edge {
        Edge::new(VertexId(a), VertexId(b))
    }

    #[test]
    fn runs_and_charges() {
        let shares = vec![vec![e(0, 1), e(1, 2)], vec![e(1, 2)]];
        let run = run_simultaneous(&SendAll, 4, &shares, SharedRandomness::new(1));
        assert_eq!(run.output, 2);
        assert_eq!(run.stats.rounds, 1);
        assert_eq!(run.stats.messages, 2);
        // n=4: 2 bits/vertex, 4/edge; msg1 = prefix(2=2 bits)+8, msg2 = prefix(1 bit)+4
        assert_eq!(run.per_player_bits, vec![2 + 8, 1 + 4]);
        assert_eq!(run.stats.total_bits, 15);
        assert_eq!(run.stats.max_player_sent_bits, 10);
    }

    #[test]
    fn threaded_matches_sequential() {
        let shares = vec![vec![e(0, 1)], vec![e(1, 2)], vec![e(0, 2)]];
        let shared = SharedRandomness::new(9);
        let a = run_simultaneous(&SendAll, 3, &shares, shared);
        let b = run_simultaneous_threaded(&SendAll, 3, &shares, shared);
        assert_eq!(a.output, b.output);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.per_player_bits, b.per_player_bits);
    }

    #[test]
    fn borrowed_message_costs_like_owned() {
        let p = PlayerState::new(0, 8, &[e(0, 1), e(2, 3)]);
        let borrowed = SimMessage::of(Payload::Edges(p.share().into()));
        let owned: SimMessage<'static> = SimMessage::of(Payload::Edges(p.share().to_vec().into()));
        assert_eq!(borrowed.bit_len(8), owned.bit_len(8));
        assert_eq!(borrowed.clone().into_owned(), owned);
    }

    #[test]
    fn transcript_partitions_message_bits_by_phase() {
        struct TwoPhase;
        impl SimultaneousProtocol for TwoPhase {
            type Output = ();
            fn message<'a>(
                &self,
                player: &'a PlayerState,
                _shared: &SharedRandomness,
            ) -> SimMessage<'a> {
                let mut m =
                    SimMessage::of_phased(Payload::Edges(player.share().into()), "induced-sample");
                m.push_phased(Payload::Bit(true), "verdict");
                m
            }
            fn referee(&self, _n: usize, _m: &[SimMessage], _s: &SharedRandomness) {}
        }
        let shares = vec![vec![e(0, 1), e(1, 2)], vec![e(1, 2)]];
        let run = run_simultaneous(&TwoPhase, 4, &shares, SharedRandomness::new(1));
        assert_eq!(run.transcript.total_bits().get(), run.stats.total_bits);
        let by_phase = run.transcript.by_phase();
        let phase_sum: u64 = by_phase.iter().map(|r| r.bits).sum();
        assert_eq!(phase_sum, run.stats.total_bits);
        assert_eq!(run.transcript.bits_for_phase("verdict"), 2);
        assert_eq!(
            run.transcript.bits_for_phase("induced-sample"),
            run.stats.total_bits - 2
        );
        let per_player = run.transcript.by_player();
        assert_eq!(per_player.len(), 2);
        assert_eq!(
            per_player[0].bits + per_player[1].bits,
            run.stats.total_bits
        );
    }

    #[test]
    fn sim_message_building() {
        let mut m = SimMessage::empty();
        assert_eq!(m.bit_len(16), BitCost(0));
        m.push(Payload::Bit(true));
        m.push(Payload::Edges(vec![e(0, 1)].into()));
        assert_eq!(m.payloads().len(), 2);
        assert_eq!(m.edges().count(), 1);
        assert_eq!(m.bit_len(16), BitCost(1 + 1 + 8));
    }
}
