//! Protocol runtimes: cost accounting over pluggable transports and
//! pluggable recorders.
//!
//! A [`Runtime`] drives one protocol execution: it owns a
//! [`Recorder`] — the full-fidelity [`Transcript`] by default, or the
//! zero-allocation [`crate::recorder::Tally`] on the fast path — charges
//! every request/response pair, and delivers requests through a
//! [`Transport`] — either [`LocalTransport`] (deterministic, sequential,
//! in-process) or [`ThreadedTransport`] (one OS thread per player,
//! crossbeam channels). Both transports produce **identical transcripts**
//! for the same seed, because all protocol randomness flows through the
//! shared string, never through scheduling; both recorders produce
//! **identical totals and rollups**, because every charge funnels
//! through the same [`Recorder::record`] calls (see `docs/RUNTIME.md`).

mod local;
mod tcp;
mod threaded;

pub use local::LocalTransport;
pub use tcp::{SharedTransport, TcpTransport, DEFAULT_NET_TIMEOUT};
pub use threaded::{ThreadedTransport, DEFAULT_RECV_TIMEOUT};

use crate::bits::{bits_for_count, bits_per_edge, BitCost};
use crate::message::Payload;
use crate::rand::SharedRandomness;
use crate::recorder::Recorder;
use crate::request::PlayerRequest;
use crate::transcript::{CommStats, Direction, Transcript};
use std::collections::HashSet;
use triad_graph::Edge;

/// How coordinator-side messages are charged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CostModel {
    /// The paper's default: private channels between the coordinator and
    /// each player; a broadcast costs `k` separate messages and duplicate
    /// content is paid for by every sender.
    #[default]
    Coordinator,
    /// The blackboard model (Theorem 3.23): every posted message is seen
    /// by all parties, so a broadcast is charged once and players never
    /// pay to repost content already on the board.
    Blackboard,
    /// The message-passing model simulated through the coordinator (§2):
    /// every message additionally carries a `⌈log₂ k⌉`-bit recipient id,
    /// the overhead of the paper's coordinator ⇄ message-passing
    /// equivalence.
    MessagePassing,
}

/// A player's channel failed mid-protocol — e.g. its thread panicked and
/// hung up. Surfaced by [`Transport::try_deliver`] instead of a deadlock
/// or an opaque abort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransportError {
    /// The player whose channel failed.
    pub player: usize,
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "player {} hung up mid-protocol", self.player)
    }
}

impl std::error::Error for TransportError {}

/// The typed failure taxonomy of a protocol execution: everything that
/// can go wrong between the coordinator and a player, so no protocol
/// path needs to panic on a faulty peer (see `docs/FAULTS.md`).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RunError {
    /// A player's channel failed outright (thread panicked, hung up, or
    /// the player crashed). Not retryable: the player stays dead.
    Transport(TransportError),
    /// The response deadline expired — a dropped message or a player too
    /// slow to answer. Retryable.
    Timeout {
        /// The player that failed to answer in time.
        player: usize,
    },
    /// The response failed its checksum frame — corrupted in flight.
    /// Retryable.
    Corrupt {
        /// The player whose response was garbled.
        player: usize,
    },
    /// The execution was abandoned — retry budget exhausted at a higher
    /// layer, quorum lost, or a wrapped non-communication failure.
    Aborted {
        /// Human-readable cause.
        reason: String,
    },
}

/// The coarse classification of a [`RunError`], used for per-kind
/// failure tallies in chaos sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RunErrorKind {
    /// [`RunError::Transport`].
    Transport,
    /// [`RunError::Timeout`].
    Timeout,
    /// [`RunError::Corrupt`].
    Corrupt,
    /// [`RunError::Aborted`].
    Aborted,
}

impl RunError {
    /// The error's coarse kind.
    pub fn kind(&self) -> RunErrorKind {
        match self {
            RunError::Transport(_) => RunErrorKind::Transport,
            RunError::Timeout { .. } => RunErrorKind::Timeout,
            RunError::Corrupt { .. } => RunErrorKind::Corrupt,
            RunError::Aborted { .. } => RunErrorKind::Aborted,
        }
    }

    /// The player implicated, when the failure names one.
    pub fn player(&self) -> Option<usize> {
        match self {
            RunError::Transport(e) => Some(e.player),
            RunError::Timeout { player } | RunError::Corrupt { player } => Some(*player),
            RunError::Aborted { .. } => None,
        }
    }

    /// Whether a bounded retry can plausibly recover: timeouts and
    /// corruptions are transient, crashes and aborts are not.
    pub fn is_retryable(&self) -> bool {
        matches!(self, RunError::Timeout { .. } | RunError::Corrupt { .. })
    }
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Transport(e) => e.fmt(f),
            RunError::Timeout { player } => {
                write!(f, "player {player} missed the response deadline")
            }
            RunError::Corrupt { player } => {
                write!(f, "player {player}'s response failed checksum verification")
            }
            RunError::Aborted { reason } => write!(f, "run aborted: {reason}"),
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Transport(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TransportError> for RunError {
    fn from(e: TransportError) -> Self {
        RunError::Transport(e)
    }
}

/// Message delivery to players, independent of cost accounting.
///
/// Responses are always `Payload<'static>`: a transport hands payload
/// ownership across the coordinator boundary (and, for the threaded
/// transport, across a channel), so borrowed player-side slices are
/// detached before delivery. Borrowing is exploited on the simultaneous
/// path instead, where messages never cross an ownership boundary.
///
/// Delivery is fallible by design — [`try_deliver`](Self::try_deliver)
/// is the required method — because even the in-process transport can be
/// decorated with injected faults ([`crate::fault::FaultyTransport`]).
/// The panicking [`deliver`](Self::deliver) convenience survives for
/// tests only.
///
/// # Example
///
/// A [`Runtime`] takes any implementor as `Box<dyn Transport>`; every
/// charge it records depends only on the protocol's logical bit costs,
/// so swapping the transport never changes the accounting. A custom
/// implementor needs only `k` and `try_deliver`:
///
/// ```
/// use triad_comm::{
///     CostModel, Payload, PlayerRequest, RunError, Runtime, SharedRandomness, Transport,
/// };
///
/// /// Every player claims to hold no edges at all.
/// struct EmptyPlayers {
///     k: usize,
/// }
///
/// impl Transport for EmptyPlayers {
///     fn k(&self) -> usize {
///         self.k
///     }
///     fn try_deliver(
///         &mut self,
///         _player: usize,
///         req: &PlayerRequest,
///     ) -> Result<Payload<'static>, RunError> {
///         Ok(match req {
///             PlayerRequest::LocalEdgeCount => Payload::Count(0),
///             _ => Payload::Empty,
///         })
///     }
/// }
///
/// let transport = Box::new(EmptyPlayers { k: 3 });
/// let mut rt = Runtime::new(transport, 8, SharedRandomness::new(1), CostModel::Coordinator);
/// let counts = rt.broadcast(PlayerRequest::LocalEdgeCount);
/// assert_eq!(counts, vec![Payload::Count(0); 3]);
/// assert!(rt.stats().total_bits > 0, "requests and responses were charged");
/// ```
pub trait Transport: Send {
    /// Number of players.
    fn k(&self) -> usize;
    /// Delivers `req` to player `player` and returns its response.
    ///
    /// # Errors
    ///
    /// Returns a [`RunError`] naming the failed player when the channel
    /// is dead ([`RunError::Transport`]), the response deadline expires
    /// ([`RunError::Timeout`]), or the response is detectably corrupted
    /// ([`RunError::Corrupt`]).
    fn try_deliver(
        &mut self,
        player: usize,
        req: &PlayerRequest,
    ) -> Result<Payload<'static>, RunError>;
    /// Checksum-framed delivery: what the runtime actually uses, so
    /// duplicate deliveries and in-flight corruption are observable.
    /// The default seals an honest [`try_deliver`](Self::try_deliver)
    /// response; fault-injecting transports override it.
    ///
    /// # Errors
    ///
    /// Propagates [`try_deliver`](Self::try_deliver) failures.
    fn try_deliver_framed(
        &mut self,
        player: usize,
        req: &PlayerRequest,
    ) -> Result<crate::fault::Framed, RunError> {
        Ok(crate::fault::Framed::seal(self.try_deliver(player, req)?))
    }
    /// Infallible delivery for tests and trusted harness code: panics on
    /// any delivery failure. Production paths go through
    /// [`try_deliver`](Self::try_deliver).
    fn deliver(&mut self, player: usize, req: &PlayerRequest) -> Payload<'static> {
        self.try_deliver(player, req)
            .unwrap_or_else(|e| panic!("{e}"))
    }
    /// Switches every player to a new shared-randomness seed (Newman's
    /// conversion). Default: unsupported, panics — implement on
    /// transports that carry the randomness.
    fn adopt_shared(&mut self, _shared: SharedRandomness) {
        panic!("this transport does not support switching shared randomness");
    }
}

/// A protocol execution context: transport + recorder + shared
/// randomness. Generic over the [`Recorder`]; `Runtime` without a type
/// argument is the full-transcript flavor.
pub struct Runtime<R: Recorder = Transcript> {
    transport: Box<dyn Transport>,
    recorder: R,
    shared: SharedRandomness,
    n: usize,
    cost_model: CostModel,
    tag_counter: u64,
    retry_budget: u32,
    fault: Option<RunError>,
}

/// Default number of retries per delivery for retryable faults
/// (timeouts, corrupted responses) before the runtime gives up on the
/// exchange. Crashes are never retried.
pub const DEFAULT_RETRY_BUDGET: u32 = 2;

impl<R: Recorder> std::fmt::Debug for Runtime<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("k", &self.transport.k())
            .field("n", &self.n)
            .field("cost_model", &self.cost_model)
            .field("total_bits", &self.recorder.total_bits())
            .finish()
    }
}

impl Runtime {
    /// A full-transcript runtime over an explicit transport.
    pub fn new(
        transport: Box<dyn Transport>,
        n: usize,
        shared: SharedRandomness,
        cost_model: CostModel,
    ) -> Self {
        Runtime::new_with(transport, n, shared, cost_model)
    }

    /// Convenience: a sequential in-process full-transcript runtime over
    /// per-player edge shares.
    pub fn local(
        n: usize,
        shares: &[Vec<Edge>],
        shared: SharedRandomness,
        cost_model: CostModel,
    ) -> Self {
        Runtime::local_with(n, shares, shared, cost_model)
    }

    /// Convenience: a threaded full-transcript runtime (one thread per
    /// player).
    pub fn threaded(
        n: usize,
        shares: &[Vec<Edge>],
        shared: SharedRandomness,
        cost_model: CostModel,
    ) -> Self {
        Runtime::threaded_with(n, shares, shared, cost_model)
    }

    /// The transcript so far.
    pub fn transcript(&self) -> &Transcript {
        &self.recorder
    }

    /// Consumes the runtime, yielding its transcript — how finished
    /// protocol drivers hand the full event log to their callers.
    pub fn into_transcript(self) -> Transcript {
        self.recorder
    }
}

impl<R: Recorder> Runtime<R> {
    /// A runtime over an explicit transport, recording into `R`.
    pub fn new_with(
        transport: Box<dyn Transport>,
        n: usize,
        shared: SharedRandomness,
        cost_model: CostModel,
    ) -> Self {
        let k = transport.k();
        Runtime {
            transport,
            recorder: R::with_players(k),
            shared,
            n,
            cost_model,
            tag_counter: 0,
            retry_budget: DEFAULT_RETRY_BUDGET,
            fault: None,
        }
    }

    /// Sets the per-delivery retry budget for retryable faults
    /// (builder-style). A budget of 0 fails on the first fault.
    pub fn with_retry_budget(mut self, budget: u32) -> Self {
        self.retry_budget = budget;
        self
    }

    /// The per-delivery retry budget in force.
    pub fn retry_budget(&self) -> u32 {
        self.retry_budget
    }

    /// The first unrecovered delivery failure, if any. A faulted runtime
    /// suppresses all further communication (and charges nothing for
    /// it); the infallible accessors return degraded empty payloads, so
    /// legacy protocol code keeps running to a verdict that the caller
    /// must then discard via [`take_fault`](Self::take_fault).
    pub fn fault(&self) -> Option<&RunError> {
        self.fault.as_ref()
    }

    /// Takes the first unrecovered failure, resetting the runtime's
    /// fault state. Chaos drivers call this after a run: `Some(err)`
    /// means the verdict cannot be trusted unless it is a verifiable
    /// triangle witness.
    pub fn take_fault(&mut self) -> Option<RunError> {
        self.fault.take()
    }

    /// A sequential in-process runtime over per-player edge shares,
    /// recording into `R`.
    pub fn local_with(
        n: usize,
        shares: &[Vec<Edge>],
        shared: SharedRandomness,
        cost_model: CostModel,
    ) -> Self {
        Runtime::new_with(
            Box::new(LocalTransport::new(n, shares, shared)),
            n,
            shared,
            cost_model,
        )
    }

    /// A sequential runtime over **pre-built, shared** player states —
    /// the prepared-input fast path: amplified sweeps build the players
    /// once and hand every repetition the same `Arc` (see
    /// `docs/RUNTIME.md`).
    pub fn prepared_with(
        n: usize,
        players: std::sync::Arc<Vec<crate::player::PlayerState>>,
        shared: SharedRandomness,
        cost_model: CostModel,
    ) -> Self {
        Runtime::new_with(
            Box::new(LocalTransport::from_shared(players, shared)),
            n,
            shared,
            cost_model,
        )
    }

    /// A threaded runtime (one thread per player), recording into `R`.
    pub fn threaded_with(
        n: usize,
        shares: &[Vec<Edge>],
        shared: SharedRandomness,
        cost_model: CostModel,
    ) -> Self {
        Runtime::new_with(
            Box::new(ThreadedTransport::spawn(n, shares, shared)),
            n,
            shared,
            cost_model,
        )
    }

    /// Number of players `k`.
    pub fn k(&self) -> usize {
        self.transport.k()
    }

    /// Number of vertices `n` in the global graph.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The public random string.
    pub fn shared(&self) -> SharedRandomness {
        self.shared
    }

    /// The charging model in force.
    pub fn cost_model(&self) -> CostModel {
        self.cost_model
    }

    /// The active cost recorder.
    pub fn recorder(&self) -> &R {
        &self.recorder
    }

    /// Consumes the runtime, yielding its recorder.
    pub fn into_recorder(self) -> R {
        self.recorder
    }

    /// Draws a fresh shared-randomness tag. Tags are derived from a
    /// deterministic counter, so both runtimes and every party agree on
    /// them for free.
    pub fn fresh_tag(&mut self) -> u64 {
        self.tag_counter += 1;
        self.tag_counter
    }

    /// Advances the round counter (bookkeeping only).
    pub fn next_round(&mut self) {
        self.recorder.next_round();
    }

    /// Runs `f` with every recorded message stamped with phase `name`,
    /// restoring the previous phase afterwards — the structured way for a
    /// protocol to attribute its communication to named stages (see the
    /// phase registry in `docs/OBSERVABILITY.md`).
    ///
    /// ```
    /// use triad_comm::{CostModel, PlayerRequest, Runtime, SharedRandomness};
    /// use triad_graph::{Edge, VertexId};
    ///
    /// let shares = vec![vec![Edge::new(VertexId(0), VertexId(1))]];
    /// let mut rt = Runtime::local(2, &shares, SharedRandomness::new(1), CostModel::Coordinator);
    /// rt.phase("probe", |rt| {
    ///     rt.request(0, PlayerRequest::LocalEdgeCount);
    /// });
    /// assert_eq!(rt.transcript().bits_for_phase("probe"), rt.stats().total_bits);
    /// ```
    pub fn phase<T>(&mut self, name: &'static str, f: impl FnOnce(&mut Self) -> T) -> T {
        let previous = self.recorder.current_phase();
        self.recorder.set_phase(name);
        let out = f(self);
        self.recorder.set_phase(previous);
        out
    }

    /// Per-message routing overhead of the active cost model.
    fn routing_overhead(&self) -> BitCost {
        match self.cost_model {
            CostModel::MessagePassing => BitCost(crate::bits::bits_per_vertex(self.transport.k())),
            _ => BitCost::ZERO,
        }
    }

    /// One framed delivery with bounded retry. The caller has already
    /// charged the first copy of the request; this method charges only
    /// fault-recovery traffic — retransmitted requests, duplicate
    /// deliveries, and garbled responses that crossed the wire — under
    /// [`crate::fault::RETRANSMIT_LABEL`]. On a fault-free transport it
    /// records nothing, so the fast path is byte-identical to the
    /// pre-fault-layer accounting.
    ///
    /// Only *delivered* retransmissions are charged: a retried request is
    /// accounted for when a subsequent attempt produces a frame (delivered
    /// or garbled), never when the exchange ultimately dies with
    /// [`RunError::Timeout`] or another terminal fault. A request the
    /// network swallowed whole cost the protocol nothing measurable, and
    /// charging it inflated chaos-mode rollups relative to the
    /// [`FaultStats`](crate::FaultStats) injection counts.
    fn exchange(
        &mut self,
        player: usize,
        req: &PlayerRequest,
        ovh: BitCost,
    ) -> Result<Payload<'static>, RunError> {
        use crate::fault::RETRANSMIT_LABEL;
        let mut attempts = 0u32;
        // Retried requests whose delivery outcome is not yet known.
        let mut pending_retransmits = 0u32;
        loop {
            let err = match self.transport.try_deliver_framed(player, req) {
                Ok(framed) => {
                    // A frame came back, so every retransmitted copy of
                    // the request that led here reached the player.
                    let req_bits = req.bit_len(self.n) + ovh;
                    for _ in 0..pending_retransmits {
                        self.recorder.record(
                            Some(player),
                            Direction::ToPlayer,
                            req_bits,
                            RETRANSMIT_LABEL,
                        );
                    }
                    pending_retransmits = 0;
                    let resp_bits = framed.payload().bit_len(self.n) + ovh;
                    for _ in 1..framed.deliveries() {
                        // Extra copies of a duplicated delivery crossed
                        // the wire too: charged, handed on once.
                        self.recorder.record(
                            Some(player),
                            Direction::ToCoordinator,
                            resp_bits,
                            RETRANSMIT_LABEL,
                        );
                    }
                    if framed.verify() {
                        return Ok(framed.into_payload());
                    }
                    // A corrupted response still consumed bandwidth.
                    self.recorder.record(
                        Some(player),
                        Direction::ToCoordinator,
                        resp_bits,
                        RETRANSMIT_LABEL,
                    );
                    RunError::Corrupt { player }
                }
                Err(e) => e,
            };
            if !err.is_retryable() || attempts >= self.retry_budget {
                // Terminal failure: pending retransmissions were never
                // observed to arrive, so they are not charged.
                return Err(err);
            }
            attempts += 1;
            pending_retransmits += 1;
        }
    }

    /// Records `err` as the runtime's fault if it is the first one.
    fn poison(&mut self, err: RunError) {
        if self.fault.is_none() {
            self.fault = Some(err);
        }
    }

    /// Sends `req` to one player, charging both directions; returns the
    /// response. Retryable delivery faults (timeouts, corruption) are
    /// recovered within the [retry budget](Self::with_retry_budget),
    /// with the recovery traffic charged under
    /// [`crate::fault::RETRANSMIT_LABEL`].
    ///
    /// # Errors
    ///
    /// Returns the unrecovered [`RunError`] once the budget is
    /// exhausted, or immediately for non-retryable failures (crashed
    /// players). A previously faulted runtime fails fast with the
    /// original error.
    pub fn try_request(
        &mut self,
        player: usize,
        req: PlayerRequest,
    ) -> Result<Payload<'static>, RunError> {
        if let Some(f) = &self.fault {
            return Err(f.clone());
        }
        let label = req.label();
        let ovh = self.routing_overhead();
        self.recorder.record(
            Some(player),
            Direction::ToPlayer,
            req.bit_len(self.n) + ovh,
            label,
        );
        let resp = self.exchange(player, &req, ovh)?;
        self.recorder.record(
            Some(player),
            Direction::ToCoordinator,
            resp.bit_len(self.n) + ovh,
            label,
        );
        Ok(resp)
    }

    /// Infallible [`try_request`](Self::try_request): an unrecovered
    /// fault poisons the runtime (see [`fault`](Self::fault)) and
    /// degrades the response to [`Payload::Empty`] — never a panic, and
    /// never a charge for bits that were not exchanged.
    pub fn request(&mut self, player: usize, req: PlayerRequest) -> Payload<'static> {
        match self.try_request(player, req) {
            Ok(resp) => resp,
            Err(e) => {
                self.poison(e);
                Payload::Empty
            }
        }
    }

    /// Newman's theorem, operationally: the parties pre-agree on a family
    /// of `family_size` candidate seeds (part of the protocol, free); the
    /// coordinator draws one index privately and announces it to every
    /// player, paying `k·⌈log₂ family_size⌉` bits (once under the
    /// blackboard model). Returns the selected shared randomness.
    ///
    /// This is the §2 conversion from shared to private randomness for
    /// multi-round protocols, at the stated `O(k log n)`-bit surcharge.
    pub fn announce_seed_from_family(&mut self, family_size: u64) -> SharedRandomness {
        use ::rand::RngCore;
        let index = self.shared.stream(0x4E45_574D).next_u64() % family_size.max(1);
        let payload = Payload::Bits(index, bits_for_count(family_size) as u32);
        let bits = payload.bit_len(self.n);
        match self.cost_model {
            CostModel::Blackboard => {
                self.recorder
                    .record(None, Direction::Broadcast, bits, "newman_seed");
            }
            _ => {
                let ovh = self.routing_overhead();
                for j in 0..self.k() {
                    self.recorder
                        .record(Some(j), Direction::ToPlayer, bits + ovh, "newman_seed");
                }
            }
        }
        SharedRandomness::new(self.shared.seed().wrapping_add(index.wrapping_mul(0x9E37)))
    }

    /// Replaces the runtime's shared randomness — the second half of
    /// Newman's conversion: after
    /// [`announce_seed_from_family`](Self::announce_seed_from_family),
    /// every party (the transport's players included) proceeds under the
    /// announced seed.
    ///
    /// # Panics
    ///
    /// Panics on transports that cannot switch seeds mid-run — currently
    /// the threaded transport, whose players own their randomness copy.
    /// Use a local runtime for private-coin executions.
    pub fn adopt_shared(&mut self, shared: SharedRandomness) {
        self.shared = shared;
        self.transport.adopt_shared(shared);
    }

    /// Sends the same request to every player.
    ///
    /// Charging: under [`CostModel::Coordinator`] the request is paid `k`
    /// times (one private channel each); under [`CostModel::Blackboard`]
    /// it is paid once. Responses are always charged individually.
    /// Retryable faults are recovered per player within the retry
    /// budget.
    ///
    /// # Errors
    ///
    /// Returns the first unrecovered [`RunError`]; responses gathered
    /// before the failure stay charged (the bits were spent).
    pub fn try_broadcast(&mut self, req: PlayerRequest) -> Result<Vec<Payload<'static>>, RunError> {
        if let Some(f) = &self.fault {
            return Err(f.clone());
        }
        let label = req.label();
        let ovh = self.routing_overhead();
        let req_bits = req.bit_len(self.n) + ovh;
        match self.cost_model {
            CostModel::Blackboard => {
                self.recorder
                    .record(None, Direction::Broadcast, req_bits, label);
            }
            _ => {
                for j in 0..self.k() {
                    self.recorder
                        .record(Some(j), Direction::ToPlayer, req_bits, label);
                }
            }
        }
        let mut out = Vec::with_capacity(self.k());
        for j in 0..self.k() {
            let resp = self.exchange(j, &req, ovh)?;
            self.recorder.record(
                Some(j),
                Direction::ToCoordinator,
                resp.bit_len(self.n) + ovh,
                label,
            );
            out.push(resp);
        }
        Ok(out)
    }

    /// Infallible [`try_broadcast`](Self::try_broadcast): an unrecovered
    /// fault poisons the runtime and degrades the result to `k` empty
    /// payloads, so index-based consumers stay in bounds.
    pub fn broadcast(&mut self, req: PlayerRequest) -> Vec<Payload<'static>> {
        match self.try_broadcast(req) {
            Ok(out) => out,
            Err(e) => {
                self.poison(e);
                vec![Payload::Empty; self.k()]
            }
        }
    }

    /// Broadcasts an edge-producing request and returns the deduplicated
    /// union of all players' edges.
    ///
    /// Under [`CostModel::Blackboard`] each player is charged only for
    /// edges not already on the board (players see prior postings), which
    /// realizes the `k`-factor saving of Theorem 3.23; under
    /// [`CostModel::Coordinator`] every copy is paid for.
    ///
    /// The charge is computed in closed form from the charged edge
    /// *count* — `bits_for_count(c) + c·bits_per_edge(n)`, exactly
    /// `Payload::Edges` of that length — without materializing the
    /// charged subset, so the per-player hop allocates nothing beyond
    /// the union itself.
    pub fn gather_edges(&mut self, req: PlayerRequest) -> Vec<Edge> {
        match self.try_gather_edges(req) {
            Ok(union) => union,
            Err(e) => {
                self.poison(e);
                Vec::new()
            }
        }
    }

    /// Fallible [`gather_edges`](Self::gather_edges): retryable faults
    /// are recovered per player within the retry budget.
    ///
    /// # Errors
    ///
    /// Returns the first unrecovered [`RunError`]; edges gathered before
    /// the failure stay charged.
    pub fn try_gather_edges(&mut self, req: PlayerRequest) -> Result<Vec<Edge>, RunError> {
        if let Some(f) = &self.fault {
            return Err(f.clone());
        }
        let label = req.label();
        let ovh = self.routing_overhead();
        let req_bits = req.bit_len(self.n) + ovh;
        match self.cost_model {
            CostModel::Blackboard => {
                self.recorder
                    .record(None, Direction::Broadcast, req_bits, label);
            }
            _ => {
                for j in 0..self.k() {
                    self.recorder
                        .record(Some(j), Direction::ToPlayer, req_bits, label);
                }
            }
        }
        let mut seen: HashSet<Edge> = HashSet::new();
        let mut union = Vec::new();
        for j in 0..self.k() {
            let resp = self.exchange(j, &req, ovh)?;
            let edges = resp.as_edges();
            let charged = match self.cost_model {
                CostModel::Blackboard => edges.iter().filter(|e| !seen.contains(*e)).count() as u64,
                _ => edges.len() as u64,
            };
            let content = BitCost(bits_for_count(charged) + bits_per_edge(self.n) * charged);
            self.recorder
                .record(Some(j), Direction::ToCoordinator, content + ovh, label);
            for e in edges {
                if seen.insert(*e) {
                    union.push(*e);
                }
            }
        }
        Ok(union)
    }

    /// Aggregated statistics so far.
    pub fn stats(&self) -> CommStats {
        self.recorder.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Tally;
    use triad_graph::VertexId;

    fn e(a: u32, b: u32) -> Edge {
        Edge::new(VertexId(a), VertexId(b))
    }

    fn shares() -> Vec<Vec<Edge>> {
        vec![vec![e(0, 1), e(1, 2)], vec![e(0, 2), e(1, 2)]]
    }

    #[test]
    fn run_error_display_source_and_taxonomy_pin_operator_messages() {
        use std::error::Error as _;
        let transport = RunError::Transport(TransportError { player: 2 });
        assert_eq!(transport.to_string(), "player 2 hung up mid-protocol");
        assert!(transport.source().is_some());
        assert_eq!(transport.kind(), RunErrorKind::Transport);
        assert_eq!(transport.player(), Some(2));
        assert!(!transport.is_retryable());
        let timeout = RunError::Timeout { player: 1 };
        assert_eq!(timeout.to_string(), "player 1 missed the response deadline");
        assert!(timeout.source().is_none());
        assert!(timeout.is_retryable());
        let corrupt = RunError::Corrupt { player: 0 };
        assert_eq!(
            corrupt.to_string(),
            "player 0's response failed checksum verification"
        );
        assert!(corrupt.is_retryable());
        // The reconnect machinery degrades an expired window into this
        // exact shape — operator-facing and schema-stable (no new
        // RunError variant, so RunErrorKind and BENCH_chaos stay fixed).
        let expired = RunError::Aborted {
            reason: "player 0 reconnect window expired after 250 ms \
                     (player 0 hung up mid-protocol)"
                .into(),
        };
        assert_eq!(
            expired.to_string(),
            "run aborted: player 0 reconnect window expired after 250 ms \
             (player 0 hung up mid-protocol)"
        );
        assert_eq!(expired.kind(), RunErrorKind::Aborted);
        assert_eq!(expired.player(), None);
        assert!(!expired.is_retryable());
    }

    #[test]
    fn local_request_roundtrip_and_charging() {
        let shared = SharedRandomness::new(7);
        let mut rt = Runtime::local(4, &shares(), shared, CostModel::Coordinator);
        assert_eq!(rt.k(), 2);
        assert_eq!(rt.n(), 4);
        let resp = rt.request(0, PlayerRequest::HasEdge(e(0, 1)));
        assert_eq!(resp, Payload::Bit(true));
        let resp = rt.request(1, PlayerRequest::HasEdge(e(0, 1)));
        assert_eq!(resp, Payload::Bit(false));
        // 2 requests × (4 bits edge req... n=4 ⇒ 2 bits/vertex, 4/edge) + 1 bit resp each
        assert_eq!(rt.stats().total_bits, 2 * (4 + 1));
    }

    #[test]
    fn broadcast_charges_per_model() {
        let shared = SharedRandomness::new(7);
        let req = PlayerRequest::HasEdge(e(0, 1));
        let mut coord = Runtime::local(4, &shares(), shared, CostModel::Coordinator);
        coord.broadcast(req.clone());
        let mut board = Runtime::local(4, &shares(), shared, CostModel::Blackboard);
        board.broadcast(req.clone());
        let req_bits = req.bit_len(4).get();
        assert_eq!(
            coord.stats().total_bits - board.stats().total_bits,
            req_bits, // k=2: one extra request copy
        );
    }

    #[test]
    fn gather_edges_dedups_and_blackboard_saves() {
        let shared = SharedRandomness::new(3);
        // Both players hold edge (1,2): duplicated content.
        let req = PlayerRequest::InducedEdges {
            tag: 0,
            p: 1.0,
            cap: 100,
        };
        let mut coord = Runtime::local(4, &shares(), shared, CostModel::Coordinator);
        let union_c = coord.gather_edges(req.clone());
        let mut board = Runtime::local(4, &shares(), shared, CostModel::Blackboard);
        let union_b = board.gather_edges(req);
        let mut uc = union_c.clone();
        let mut ub = union_b.clone();
        uc.sort_unstable();
        ub.sort_unstable();
        assert_eq!(uc, ub);
        assert_eq!(uc.len(), 3, "union of shares has 3 distinct edges");
        assert!(
            board.stats().total_bits < coord.stats().total_bits,
            "blackboard must save on duplicated content"
        );
    }

    #[test]
    fn gather_edges_closed_form_matches_payload_cost() {
        // The count-only charge must equal what materializing the charged
        // subset as a `Payload::Edges` would have cost, per player.
        let shared = SharedRandomness::new(3);
        let req = PlayerRequest::InducedEdges {
            tag: 0,
            p: 1.0,
            cap: 100,
        };
        for model in [CostModel::Coordinator, CostModel::Blackboard] {
            let mut rt = Runtime::local(4, &shares(), shared, model);
            rt.gather_edges(req.clone());
            let mut expected = Transcript::new(2);
            let mut seen: HashSet<Edge> = HashSet::new();
            match model {
                CostModel::Blackboard => {
                    expected.record(None, Direction::Broadcast, req.bit_len(4), req.label())
                }
                _ => {
                    for j in 0..2 {
                        expected.record(Some(j), Direction::ToPlayer, req.bit_len(4), req.label());
                    }
                }
            }
            for (j, share) in shares().iter().enumerate() {
                let charged: Vec<Edge> = share
                    .iter()
                    .copied()
                    .filter(|e| model != CostModel::Blackboard || !seen.contains(e))
                    .collect();
                seen.extend(share.iter().copied());
                expected.record(
                    Some(j),
                    Direction::ToCoordinator,
                    Payload::Edges(charged.into()).bit_len(4),
                    req.label(),
                );
            }
            assert_eq!(rt.stats(), expected.stats(), "{model:?}");
        }
    }

    #[test]
    fn tally_runtime_matches_transcript_runtime() {
        let shared = SharedRandomness::new(11);
        fn drive<R: Recorder>(rt: &mut Runtime<R>) {
            rt.request(0, PlayerRequest::LocalEdgeCount);
            rt.next_round();
            rt.broadcast(PlayerRequest::HasEdge(e(1, 2)));
            rt.gather_edges(PlayerRequest::InducedEdges {
                tag: 1,
                p: 1.0,
                cap: 10,
            });
        }
        let mut full: Runtime<Transcript> =
            Runtime::local_with(4, &shares(), shared, CostModel::Coordinator);
        let mut fast: Runtime<Tally> =
            Runtime::local_with(4, &shares(), shared, CostModel::Coordinator);
        drive(&mut full);
        drive(&mut fast);
        assert_eq!(full.stats(), fast.stats());
        assert_eq!(full.transcript().by_phase(), fast.recorder().by_phase());
        assert_eq!(full.transcript().by_player(), fast.recorder().by_player());
        assert_eq!(full.transcript().by_round(), fast.recorder().by_round());
        assert_eq!(
            full.transcript().by_direction(),
            fast.recorder().by_direction()
        );
    }

    #[test]
    fn threaded_matches_local_transcript() {
        let shared = SharedRandomness::new(11);
        let mut local = Runtime::local(4, &shares(), shared, CostModel::Coordinator);
        let mut threaded = Runtime::threaded(4, &shares(), shared, CostModel::Coordinator);
        for rt in [&mut local, &mut threaded] {
            rt.request(0, PlayerRequest::LocalEdgeCount);
            rt.request(1, PlayerRequest::FirstEdge { perm_tag: 9 });
            rt.broadcast(PlayerRequest::HasEdge(e(1, 2)));
        }
        assert_eq!(local.stats(), threaded.stats());
    }

    #[test]
    fn message_passing_adds_routing_overhead() {
        let shared = SharedRandomness::new(7);
        let req = PlayerRequest::HasEdge(e(0, 1));
        let mut coord = Runtime::local(4, &shares(), shared, CostModel::Coordinator);
        coord.request(0, req.clone());
        let mut mp = Runtime::local(4, &shares(), shared, CostModel::MessagePassing);
        mp.request(0, req);
        // k = 2 ⇒ 1 routing bit per message, 2 messages.
        assert_eq!(mp.stats().total_bits, coord.stats().total_bits + 2);
    }

    #[test]
    fn newman_seed_costs_k_announcements() {
        let shared = SharedRandomness::new(9);
        let mut rt = Runtime::local(4, &shares(), shared, CostModel::Coordinator);
        let derived = rt.announce_seed_from_family(1 << 10);
        // Index payload: 11 bits (bits_for_count(1024)) per player, k = 2.
        assert_eq!(rt.stats().total_bits, 2 * 11);
        assert_ne!(derived.seed(), shared.seed());
        // Deterministic: same family, same base seed → same derived seed.
        let mut rt2 = Runtime::local(4, &shares(), shared, CostModel::Coordinator);
        assert_eq!(
            rt2.announce_seed_from_family(1 << 10).seed(),
            derived.seed()
        );
    }

    #[test]
    fn phase_scopes_nest_and_restore() {
        let shared = SharedRandomness::new(5);
        let mut rt = Runtime::local(4, &shares(), shared, CostModel::Coordinator);
        rt.phase("outer", |rt| {
            rt.request(0, PlayerRequest::LocalEdgeCount);
            rt.phase("inner", |rt| {
                rt.request(1, PlayerRequest::LocalEdgeCount);
            });
            rt.request(0, PlayerRequest::HasEdge(e(0, 1)));
        });
        rt.request(1, PlayerRequest::HasEdge(e(0, 1)));
        let t = rt.transcript();
        assert_eq!(t.current_phase(), crate::transcript::DEFAULT_PHASE);
        let total = t.total_bits().get();
        assert_eq!(
            t.bits_for_phase("outer")
                + t.bits_for_phase("inner")
                + t.bits_for_phase(crate::transcript::DEFAULT_PHASE),
            total
        );
        assert!(t.bits_for_phase("inner") > 0);
        let events = rt.into_transcript();
        assert_eq!(events.total_bits().get(), total);
    }

    #[test]
    fn fresh_tags_are_unique_and_rounds_advance() {
        let shared = SharedRandomness::new(0);
        let mut rt = Runtime::local(4, &shares(), shared, CostModel::Coordinator);
        let t1 = rt.fresh_tag();
        let t2 = rt.fresh_tag();
        assert_ne!(t1, t2);
        assert_eq!(rt.stats().rounds, 1);
        rt.next_round();
        assert_eq!(rt.stats().rounds, 2);
    }
}
