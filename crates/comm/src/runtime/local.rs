use std::sync::Arc;

use super::{RunError, Transport};
use crate::message::Payload;
use crate::player::{players_from_shares, PlayerState};
use crate::rand::SharedRandomness;
use crate::request::PlayerRequest;
use triad_graph::Edge;

/// Deterministic in-process transport: the coordinator calls player
/// handlers directly. The reference execution mode — fast, allocation-light
/// and reproducible.
///
/// Player states are held behind an [`Arc`] so prepared inputs can share
/// one set of players across many repetitions without re-deriving
/// adjacency (request handlers take `&self`, so sharing is sound).
///
/// # Example
///
/// Handing an explicitly built `LocalTransport` to a
/// [`Runtime`](crate::runtime::Runtime) — what the
/// [`Runtime::local`](crate::runtime::Runtime::local) convenience does
/// internally:
///
/// ```
/// use triad_comm::{
///     CostModel, LocalTransport, Payload, PlayerRequest, Runtime, SharedRandomness,
/// };
/// use triad_graph::{Edge, VertexId};
///
/// let e = |a, b| Edge::new(VertexId(a), VertexId(b));
/// let shares = vec![vec![e(0, 1), e(1, 2)], vec![e(0, 2)]];
/// let shared = SharedRandomness::new(7);
/// let transport = LocalTransport::new(3, &shares, shared);
/// let mut rt = Runtime::new(Box::new(transport), 3, shared, CostModel::Coordinator);
/// assert_eq!(rt.request(1, PlayerRequest::LocalEdgeCount), Payload::Count(1));
/// ```
#[derive(Debug)]
pub struct LocalTransport {
    players: Arc<Vec<PlayerState>>,
    shared: SharedRandomness,
}

impl LocalTransport {
    /// Builds player states from edge shares.
    pub fn new(n: usize, shares: &[Vec<Edge>], shared: SharedRandomness) -> Self {
        LocalTransport {
            players: Arc::new(players_from_shares(n, shares)),
            shared,
        }
    }

    /// Wraps pre-built player states.
    pub fn from_players(players: Vec<PlayerState>, shared: SharedRandomness) -> Self {
        LocalTransport {
            players: Arc::new(players),
            shared,
        }
    }

    /// Shares pre-built player states with other transports — the
    /// prepared-input fast path of amplified sweeps (`docs/RUNTIME.md`).
    pub fn from_shared(players: Arc<Vec<PlayerState>>, shared: SharedRandomness) -> Self {
        LocalTransport { players, shared }
    }

    /// Read-only access to the players (tests and diagnostics).
    pub fn players(&self) -> &[PlayerState] {
        &self.players
    }
}

impl Transport for LocalTransport {
    fn k(&self) -> usize {
        self.players.len()
    }

    fn try_deliver(
        &mut self,
        player: usize,
        req: &PlayerRequest,
    ) -> Result<Payload<'static>, RunError> {
        // In-process handlers cannot lose or garble a response.
        Ok(self.players[player].handle(req, &self.shared))
    }

    fn adopt_shared(&mut self, shared: SharedRandomness) {
        self.shared = shared;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triad_graph::VertexId;

    #[test]
    fn delivers_to_correct_player() {
        let e01 = Edge::new(VertexId(0), VertexId(1));
        let e12 = Edge::new(VertexId(1), VertexId(2));
        let shared = SharedRandomness::new(5);
        let mut t = LocalTransport::new(3, &[vec![e01], vec![e12]], shared);
        assert_eq!(t.k(), 2);
        assert_eq!(
            t.deliver(0, &PlayerRequest::HasEdge(e01)),
            Payload::Bit(true)
        );
        assert_eq!(
            t.deliver(1, &PlayerRequest::HasEdge(e01)),
            Payload::Bit(false)
        );
        assert_eq!(t.players()[1].edge_count(), 1);
    }
}
