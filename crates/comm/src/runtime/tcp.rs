//! [`TcpTransport`]: coordinator-side message delivery over real
//! sockets, speaking the framed wire protocol of [`crate::wire`]
//! (specified in `docs/NETWORKING.md`).
//!
//! The transport holds one established, handshaken connection per
//! player, ordered by player index — [`crate::daemon::TcpCoordinator`]
//! produces it from the accept loop. Every delivery is one
//! [`Request`](crate::wire::WireMessage::Request) frame tagged with a
//! fresh correlation id; responses with stale ids (answers to a delivery
//! the coordinator already timed out) are discarded instead of
//! desynchronizing the stream, which is what makes the runtime's
//! bounded-retry loop sound over TCP.
//!
//! Cost accounting is **unchanged** by this transport: the recorder
//! charges model bit costs (`bit_len`), never wire bytes, so a
//! fault-free TCP run produces accounting byte-identical to
//! [`LocalTransport`](super::LocalTransport) for the same
//! (protocol, seed, k).

use crate::daemon::{SessionHost, ACCEPT_POLL_INTERVAL};
use crate::message::Payload;
use crate::rand::SharedRandomness;
use crate::request::PlayerRequest;
use crate::runtime::{RunError, Transport, TransportError};
use crate::simultaneous::SimMessage;
use crate::wire::{self, WireError, WireMessage};
use std::net::TcpStream;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Default per-response deadline of a networked run. Generous because a
/// remote player may legitimately scan a large share; operators tune it
/// with `--timeout-secs`.
pub const DEFAULT_NET_TIMEOUT: Duration = Duration::from_secs(30);

/// Maps a wire-level failure on `player`'s connection onto the typed
/// [`RunError`] taxonomy (normative table in `docs/NETWORKING.md`):
/// read deadline → `Timeout` (retryable), garbled or version-confused
/// frame → `Corrupt` (retryable), dead socket → `Transport`
/// (player stays dead), protocol violation → `Aborted`.
fn map_wire(player: usize, e: WireError) -> RunError {
    if e.is_timeout() {
        return RunError::Timeout { player };
    }
    match e {
        WireError::Io(_) => RunError::Transport(TransportError { player }),
        WireError::Corrupt(_) | WireError::Version { .. } => RunError::Corrupt { player },
        WireError::Protocol(reason) => RunError::Aborted {
            reason: format!("player {player}: {reason}"),
        },
    }
}

/// A [`Transport`] over one TCP connection per player.
///
/// Constructed by
/// [`TcpCoordinator::accept_players`](crate::daemon::TcpCoordinator::accept_players)
/// once every expected player has completed the handshake.
///
/// # Example
///
/// A complete single-player loopback run — coordinator on one side,
/// [`PlayerSession`](crate::daemon::PlayerSession) on the other — driven
/// through a [`Runtime`](crate::runtime::Runtime) exactly like any
/// in-process transport:
///
/// ```
/// use std::sync::{Arc, Mutex};
/// use std::time::Duration;
/// use triad_comm::daemon::{PlayerSession, ServeConfig, TcpCoordinator};
/// use triad_comm::runtime::SharedTransport;
/// use triad_comm::{
///     CostModel, Payload, PlayerRequest, PlayerState, Runtime, SharedRandomness, SimMessage,
/// };
/// use triad_graph::{Edge, VertexId};
///
/// let coordinator = TcpCoordinator::bind("127.0.0.1:0")?;
/// let addr = coordinator.local_addr()?;
/// let cfg = ServeConfig {
///     k: 1,
///     n: 4,
///     seed: 7,
///     cost_model: CostModel::Coordinator,
///     protocol: "unrestricted".into(),
///     params: String::new(),
/// };
///
/// let player = std::thread::spawn(move || {
///     let session = PlayerSession::connect(addr, None, Duration::from_secs(10)).unwrap();
///     let share = vec![Edge::new(VertexId(0), VertexId(1))];
///     let state = PlayerState::new(session.welcome().player as usize, 4, &share);
///     session.serve(&state, |_, _| SimMessage::empty()).unwrap()
/// });
///
/// let transport = coordinator.accept_players(&cfg, Duration::from_secs(10))?;
/// let handle = Arc::new(Mutex::new(transport));
/// let mut rt = Runtime::new(
///     Box::new(SharedTransport::new(handle.clone())),
///     4,
///     SharedRandomness::new(7),
///     CostModel::Coordinator,
/// );
/// assert_eq!(rt.request(0, PlayerRequest::LocalEdgeCount), Payload::Count(1));
/// drop(rt);
/// handle.lock().unwrap().goodbye("done");
/// let summary = player.join().unwrap();
/// assert_eq!(summary.farewell.as_deref(), Some("done"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct TcpTransport {
    conns: Vec<PlayerConn>,
    next_id: u64,
    timeout: Duration,
    pending_fault: Option<RunError>,
    session: Option<Arc<SessionHost>>,
}

/// The per-slot connection state machine (normative diagram in
/// `docs/NETWORKING.md`): a slot is `Active` over a live handshaken
/// socket, or `Detached` — its connection died mid-run while a
/// reconnect window holds the slot open for a resume claim. Without a
/// [`SessionHost`] (no reconnect window), slots never detach: the first
/// failure surfaces directly, exactly the pre-session behavior.
enum PlayerConn {
    /// A live connection.
    Active(TcpStream),
    /// The connection died at `since`; `cause` is the failure that
    /// detached it. Deliveries poll for a rejoin until
    /// `since + window`, after which the run degrades with a typed
    /// `Aborted`.
    Detached { since: Instant, cause: RunError },
}

impl PlayerConn {
    fn is_active(&self) -> bool {
        matches!(self, PlayerConn::Active(_))
    }
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("k", &self.conns.len())
            .field(
                "detached",
                &self.conns.iter().filter(|c| !c.is_active()).count(),
            )
            .field("timeout", &self.timeout)
            .field("pending_fault", &self.pending_fault)
            .field("session", &self.session)
            .finish()
    }
}

impl TcpTransport {
    /// Wraps already-handshaken connections, ordered by player index,
    /// arming each with the per-response read deadline.
    pub(crate) fn from_conns(conns: Vec<TcpStream>, timeout: Duration) -> Self {
        Self::build(conns, timeout, None)
    }

    /// [`from_conns`](Self::from_conns) plus the session host whose
    /// reconnect window lets detached slots rejoin mid-run.
    pub(crate) fn from_conns_with_session(
        conns: Vec<TcpStream>,
        timeout: Duration,
        session: Arc<SessionHost>,
    ) -> Self {
        Self::build(conns, timeout, Some(session))
    }

    fn build(conns: Vec<TcpStream>, timeout: Duration, session: Option<Arc<SessionHost>>) -> Self {
        let mut t = TcpTransport {
            conns: conns.into_iter().map(PlayerConn::Active).collect(),
            next_id: 0,
            timeout,
            pending_fault: None,
            session,
        };
        t.arm_timeouts();
        t
    }

    fn arm_timeouts(&mut self) {
        for conn in &self.conns {
            // A connection that cannot even accept a deadline is as good
            // as dead; the next delivery on it will surface the error.
            if let PlayerConn::Active(stream) = conn {
                let _ = stream.set_read_timeout(Some(self.timeout));
            }
        }
    }

    /// Whether `e` is a failure the reconnect window absorbs: the
    /// connection went silent or died. Corrupt frames and protocol
    /// violations stay fatal-or-retryable exactly as before — they come
    /// from a *live* peer, so a rejoin would change nothing.
    fn detachable(&self, e: &RunError) -> bool {
        self.session.as_ref().is_some_and(|s| !s.window().is_zero())
            && matches!(e, RunError::Timeout { .. } | RunError::Transport(_))
    }

    /// Marks `player`'s slot detached as of now, recording the failure
    /// that killed the connection.
    fn detach(&mut self, player: usize, cause: RunError) {
        self.conns[player] = PlayerConn::Detached {
            since: Instant::now(),
            cause,
        };
    }

    /// Ensures `player`'s slot has a live connection, blocking while its
    /// reconnect window is open: polls the session listener, reattaches
    /// any valid claimant (for *any* detached slot — rejoins are
    /// accepted even for players the current delivery is not waiting
    /// on), and fails with a typed `Aborted` once the window expires.
    /// Late claimants arriving after expiry are answered with a
    /// `WindowExpired` error frame by the same poll.
    fn ensure_active(&mut self, player: usize) -> Result<(), RunError> {
        if self.conns[player].is_active() {
            return Ok(());
        }
        let Some(session) = self.session.clone() else {
            // Unreachable by construction (slots only detach when a
            // session exists), but typed rather than trusted.
            return Err(RunError::Transport(TransportError { player }));
        };
        let window = session.window();
        loop {
            let now = Instant::now();
            let mut detached = vec![false; self.conns.len()];
            let mut expired = vec![false; self.conns.len()];
            for (j, conn) in self.conns.iter().enumerate() {
                if let PlayerConn::Detached { since, .. } = conn {
                    detached[j] = true;
                    expired[j] = now >= *since + window;
                }
            }
            if let Some((slot, stream)) = session.poll_claimants(&detached, &expired, self.timeout)
            {
                let _ = stream.set_read_timeout(Some(self.timeout));
                self.conns[slot] = PlayerConn::Active(stream);
                if slot == player {
                    // One final drain so claimants racing this rejoin
                    // (the duplicate-claim race) get their typed
                    // SlotAttached answer now, not at the next detach.
                    self.drain_claimants(&session);
                    return Ok(());
                }
                // Another slot rejoined; recompute the masks and keep
                // draining without sleeping.
                continue;
            }
            if expired[player] {
                if let PlayerConn::Detached { cause, .. } = &self.conns[player] {
                    return Err(RunError::Aborted {
                        reason: format!(
                            "player {player} reconnect window expired after {} ms ({cause})",
                            window.as_millis()
                        ),
                    });
                }
            }
            std::thread::sleep(ACCEPT_POLL_INTERVAL);
        }
    }

    /// Empties the accept backlog once, attaching any valid claimant
    /// for a still-detached slot and answering the rest with typed
    /// rejections. Returns when the backlog is empty.
    fn drain_claimants(&mut self, session: &Arc<SessionHost>) {
        let window = session.window();
        loop {
            let now = Instant::now();
            let mut detached = vec![false; self.conns.len()];
            let mut expired = vec![false; self.conns.len()];
            for (j, conn) in self.conns.iter().enumerate() {
                if let PlayerConn::Detached { since, .. } = conn {
                    detached[j] = true;
                    expired[j] = now >= *since + window;
                }
            }
            match session.poll_claimants(&detached, &expired, self.timeout) {
                Some((slot, stream)) => {
                    let _ = stream.set_read_timeout(Some(self.timeout));
                    self.conns[slot] = PlayerConn::Active(stream);
                }
                None => return,
            }
        }
    }

    /// The live stream for `player`; typed failure if the slot is
    /// detached (callers go through [`ensure_active`](Self::ensure_active)
    /// first).
    fn active(&mut self, player: usize) -> Result<&mut TcpStream, RunError> {
        match &mut self.conns[player] {
            PlayerConn::Active(stream) => Ok(stream),
            PlayerConn::Detached { .. } => Err(RunError::Transport(TransportError { player })),
        }
    }

    /// Test hook: drops `player`'s live connection (closing the socket
    /// under the remote peer) and marks the slot detached, as if the
    /// coordinator had just observed the disconnect.
    #[cfg(test)]
    pub(crate) fn sever_for_test(&mut self, player: usize) {
        self.detach(player, RunError::Transport(TransportError { player }));
    }

    /// Replaces the per-response deadline (builder-style).
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self.arm_timeouts();
        self
    }

    /// The per-response deadline in force.
    pub fn timeout(&self) -> Duration {
        self.timeout
    }

    fn fresh_id(&mut self) -> u64 {
        self.next_id += 1;
        self.next_id
    }

    /// Asks every player for its one-shot simultaneous message, in
    /// player order — the networked gather feeding
    /// [`run_simultaneous_collected`](crate::simultaneous::run_simultaneous_collected).
    ///
    /// # Errors
    ///
    /// Returns the first delivery failure, mapped onto [`RunError`] like
    /// any other exchange.
    pub fn collect_sim_messages(&mut self) -> Result<Vec<SimMessage<'static>>, RunError> {
        if let Some(f) = self.pending_fault.take() {
            return Err(f);
        }
        let mut out = Vec::with_capacity(self.conns.len());
        for player in 0..self.conns.len() {
            // The same detach-and-rejoin loop as `try_deliver`: a gather
            // interrupted by a disconnect replays the sim request on the
            // rejoined connection with a fresh id — invisible to cost
            // accounting, identical to an uninterrupted gather.
            let message = loop {
                self.ensure_active(player)?;
                let id = self.fresh_id();
                let attempt = {
                    let stream = self.active(player)?;
                    wire::write_frame(stream, &WireMessage::SimRequest { id })
                        .map_err(|_| RunError::Transport(TransportError { player }))
                        .and_then(|()| await_sim_response(stream, player, id))
                };
                match attempt {
                    Ok(message) => break message,
                    Err(e) if self.detachable(&e) => self.detach(player, e),
                    Err(e) => return Err(e),
                }
            };
            out.push(message);
        }
        Ok(out)
    }

    /// Best-effort farewell: sends a [`Goodbye`](WireMessage::Goodbye)
    /// carrying the run's verdict line to every player, so remote
    /// sessions exit cleanly instead of reading EOF. Errors are ignored —
    /// the run is already over. Detached slots are skipped (their
    /// connection is gone; a claimant arriving later finds the listener
    /// closed).
    pub fn goodbye(&mut self, summary: &str) {
        let msg = WireMessage::Goodbye {
            summary: summary.to_owned(),
        };
        for conn in &mut self.conns {
            if let PlayerConn::Active(stream) = conn {
                let _ = wire::write_frame(stream, &msg);
            }
        }
    }
}

/// Reads frames from `player`'s stream until the `Response` with
/// correlation id `id` arrives, discarding stale responses along the
/// way.
fn await_response(
    stream: &mut TcpStream,
    player: usize,
    id: u64,
) -> Result<Payload<'static>, RunError> {
    loop {
        match wire::read_frame(stream) {
            Ok(WireMessage::Response { id: got, payload }) if got == id => return Ok(payload),
            Ok(
                WireMessage::Response { id: got, .. } | WireMessage::SimResponse { id: got, .. },
            ) if got < id => {
                // A late answer to a delivery the runtime already
                // timed out and retried: drop it, keep reading.
                continue;
            }
            Ok(WireMessage::Error { reason, .. }) => {
                return Err(RunError::Aborted {
                    reason: format!("player {player}: {reason}"),
                })
            }
            Ok(other) => {
                return Err(RunError::Aborted {
                    reason: format!("player {player} sent an unexpected {} frame", other.kind()),
                })
            }
            Err(e) => return Err(map_wire(player, e)),
        }
    }
}

/// [`await_response`] for the simultaneous gather: waits for the
/// `SimResponse` with correlation id `id`.
fn await_sim_response(
    stream: &mut TcpStream,
    player: usize,
    id: u64,
) -> Result<SimMessage<'static>, RunError> {
    loop {
        match wire::read_frame(stream) {
            Ok(WireMessage::SimResponse { id: got, message }) if got == id => return Ok(message),
            Ok(
                WireMessage::Response { id: got, .. } | WireMessage::SimResponse { id: got, .. },
            ) if got < id => continue,
            Ok(WireMessage::Error { reason, .. }) => {
                return Err(RunError::Aborted {
                    reason: format!("player {player}: {reason}"),
                })
            }
            Ok(other) => {
                return Err(RunError::Aborted {
                    reason: format!("player {player} sent an unexpected {} frame", other.kind()),
                })
            }
            Err(e) => return Err(map_wire(player, e)),
        }
    }
}

impl Transport for TcpTransport {
    fn k(&self) -> usize {
        self.conns.len()
    }

    fn try_deliver(
        &mut self,
        player: usize,
        req: &PlayerRequest,
    ) -> Result<Payload<'static>, RunError> {
        if let Some(f) = self.pending_fault.take() {
            return Err(f);
        }
        // The reconnect loop: a delivery interrupted by a disconnect
        // waits out the rejoin (bounded by the session window) and
        // replays the request with a fresh correlation id on the new
        // connection. The replay happens entirely below the runtime's
        // charging layer, so a run interrupted and resumed is
        // bit-identical — verdict, stats and tally — to an
        // uninterrupted one (docs/NETWORKING.md).
        loop {
            self.ensure_active(player)?;
            let id = self.fresh_id();
            let msg = WireMessage::Request {
                id,
                req: req.clone(),
            };
            let attempt = {
                let stream = self.active(player)?;
                wire::write_frame(stream, &msg)
                    .map_err(|_| RunError::Transport(TransportError { player }))
                    .and_then(|()| await_response(stream, player, id))
            };
            match attempt {
                Ok(payload) => return Ok(payload),
                Err(e) if self.detachable(&e) => self.detach(player, e),
                Err(e) => return Err(e),
            }
        }
    }

    fn adopt_shared(&mut self, shared: SharedRandomness) {
        // The trait signature is infallible (in-process transports cannot
        // fail here), so a network failure is parked and surfaced by the
        // next delivery instead of panicking on a dead peer.
        if self.pending_fault.is_some() {
            return;
        }
        let seed = shared.seed();
        // Record the seed *before* telling anyone: a player that
        // detaches mid-reseed learns the new seed from its rejoin
        // Welcome instead of the lost AdoptShared frame.
        if let Some(session) = &self.session {
            session.note_seed(seed);
        }
        for player in 0..self.conns.len() {
            // A detached slot owes no Ack: re-arm its window (each run
            // in persistent mode grants a fresh rejoin opportunity) and
            // let the rejoin Welcome carry the seed.
            if let PlayerConn::Detached { since, .. } = &mut self.conns[player] {
                *since = Instant::now();
                continue;
            }
            let attempt = self.active(player).and_then(|stream| {
                wire::write_frame(stream, &WireMessage::AdoptShared { seed })
                    .map_err(|_| RunError::Transport(TransportError { player }))
                    .and_then(|()| await_ack(stream, player))
            });
            match attempt {
                Ok(()) => {}
                Err(e) if self.detachable(&e) => {
                    // The slot detaches with a fresh window; the seed
                    // travels in the rejoin Welcome, so there is
                    // nothing to retry here.
                    self.detach(player, e);
                }
                Err(e) => {
                    self.pending_fault = Some(e);
                    return;
                }
            }
        }
    }
}

/// Waits for the `Ack` answering an `AdoptShared`, discarding stale
/// data responses along the way.
fn await_ack(stream: &mut TcpStream, player: usize) -> Result<(), RunError> {
    loop {
        match wire::read_frame(stream) {
            Ok(WireMessage::Ack) => return Ok(()),
            Ok(WireMessage::Response { .. } | WireMessage::SimResponse { .. }) => continue,
            Ok(WireMessage::Error { reason, .. }) => {
                return Err(RunError::Aborted {
                    reason: format!("player {player}: {reason}"),
                })
            }
            Ok(other) => {
                return Err(RunError::Aborted {
                    reason: format!("player {player} sent an unexpected {} frame", other.kind()),
                })
            }
            Err(e) => return Err(map_wire(player, e)),
        }
    }
}

/// A cloneable [`Transport`] handle over a mutex-guarded inner
/// transport.
///
/// [`Runtime`](crate::runtime::Runtime) consumes its transport as
/// `Box<dyn Transport>`, which would strand a [`TcpTransport`]'s
/// connections inside the finished runtime — no way to send the final
/// [`goodbye`](TcpTransport::goodbye) or inspect fault counters.
/// `SharedTransport` keeps the inner transport behind an
/// `Arc<Mutex<…>>`: hand one clone to the runtime, keep the `Arc`.
/// All trait methods delegate — including `try_deliver_framed`, so a
/// wrapped fault-injecting transport keeps its override.
pub struct SharedTransport<T: Transport> {
    inner: Arc<Mutex<T>>,
}

impl<T: Transport> SharedTransport<T> {
    /// Wraps a shared inner transport.
    pub fn new(inner: Arc<Mutex<T>>) -> Self {
        SharedTransport { inner }
    }

    fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Transport> Clone for SharedTransport<T> {
    fn clone(&self) -> Self {
        SharedTransport {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Transport> Transport for SharedTransport<T> {
    fn k(&self) -> usize {
        self.lock().k()
    }

    fn try_deliver(
        &mut self,
        player: usize,
        req: &PlayerRequest,
    ) -> Result<Payload<'static>, RunError> {
        self.lock().try_deliver(player, req)
    }

    fn try_deliver_framed(
        &mut self,
        player: usize,
        req: &PlayerRequest,
    ) -> Result<crate::fault::Framed, RunError> {
        self.lock().try_deliver_framed(player, req)
    }

    fn adopt_shared(&mut self, shared: SharedRandomness) {
        self.lock().adopt_shared(shared);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::RunErrorKind;
    use std::io::Write;
    use std::net::TcpListener;

    fn pair() -> (TcpListener, std::net::SocketAddr) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        (listener, addr)
    }

    #[test]
    fn stale_responses_are_discarded_until_the_matching_id() {
        let (listener, addr) = pair();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let id = match wire::read_frame(&mut s).unwrap() {
                WireMessage::Request { id, .. } => id,
                other => panic!("expected request, got {other:?}"),
            };
            // A late answer to an earlier (timed-out) delivery first…
            wire::write_frame(
                &mut s,
                &WireMessage::Response {
                    id: id - 1,
                    payload: Payload::Bit(false),
                },
            )
            .unwrap();
            // …then the real one.
            wire::write_frame(
                &mut s,
                &WireMessage::Response {
                    id,
                    payload: Payload::Bit(true),
                },
            )
            .unwrap();
            s
        });
        let conn = TcpStream::connect(addr).unwrap();
        let mut t = TcpTransport::from_conns(vec![conn], Duration::from_secs(10));
        // Burn an id so the server's `id - 1` is a valid stale id.
        t.next_id = 1;
        let resp = t.try_deliver(0, &PlayerRequest::LocalEdgeCount).unwrap();
        assert_eq!(resp, Payload::Bit(true));
        drop(server.join().unwrap());
    }

    #[test]
    fn silence_maps_to_timeout() {
        let (listener, addr) = pair();
        let conn = TcpStream::connect(addr).unwrap();
        let (held, _) = listener.accept().unwrap();
        let mut t = TcpTransport::from_conns(vec![conn], Duration::from_millis(50));
        let err = t
            .try_deliver(0, &PlayerRequest::LocalEdgeCount)
            .unwrap_err();
        assert_eq!(err.kind(), RunErrorKind::Timeout);
        assert_eq!(err.player(), Some(0));
        assert!(err.is_retryable());
        drop(held);
    }

    #[test]
    fn garbled_frames_map_to_corrupt() {
        let (listener, addr) = pair();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let id = match wire::read_frame(&mut s).unwrap() {
                WireMessage::Request { id, .. } => id,
                other => panic!("expected request, got {other:?}"),
            };
            let mut buf = Vec::new();
            wire::write_frame(
                &mut buf,
                &WireMessage::Response {
                    id,
                    payload: Payload::Count(9),
                },
            )
            .unwrap();
            // Flip a body bit so the checksum fails on arrival.
            let at = buf.len() - 9;
            buf[at] ^= 0x01;
            s.write_all(&buf).unwrap();
            s.flush().unwrap();
            s
        });
        let conn = TcpStream::connect(addr).unwrap();
        let mut t = TcpTransport::from_conns(vec![conn], Duration::from_secs(10));
        let err = t
            .try_deliver(0, &PlayerRequest::LocalEdgeCount)
            .unwrap_err();
        assert_eq!(err.kind(), RunErrorKind::Corrupt);
        assert!(err.is_retryable());
        drop(server.join().unwrap());
    }

    #[test]
    fn hangup_maps_to_transport_and_is_not_retryable() {
        let (listener, addr) = pair();
        let conn = TcpStream::connect(addr).unwrap();
        drop(listener.accept().unwrap()); // peer hangs up immediately
        let mut t = TcpTransport::from_conns(vec![conn], Duration::from_secs(10));
        let err = t
            .try_deliver(0, &PlayerRequest::LocalEdgeCount)
            .unwrap_err();
        assert_eq!(err.kind(), RunErrorKind::Transport);
        assert!(!err.is_retryable());
    }

    #[test]
    fn shared_transport_delegates_and_survives_clone() {
        let (listener, addr) = pair();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            for _ in 0..2 {
                let id = match wire::read_frame(&mut s).unwrap() {
                    WireMessage::Request { id, .. } => id,
                    other => panic!("expected request, got {other:?}"),
                };
                wire::write_frame(
                    &mut s,
                    &WireMessage::Response {
                        id,
                        payload: Payload::Count(3),
                    },
                )
                .unwrap();
            }
            s
        });
        let conn = TcpStream::connect(addr).unwrap();
        let inner = Arc::new(Mutex::new(TcpTransport::from_conns(
            vec![conn],
            Duration::from_secs(10),
        )));
        let mut handle = SharedTransport::new(inner.clone());
        assert_eq!(handle.k(), 1);
        let mut other = handle.clone();
        assert_eq!(
            handle
                .try_deliver(0, &PlayerRequest::LocalEdgeCount)
                .unwrap(),
            Payload::Count(3)
        );
        assert_eq!(
            other
                .try_deliver(0, &PlayerRequest::LocalEdgeCount)
                .unwrap(),
            Payload::Count(3)
        );
        drop(server.join().unwrap());
    }
}
