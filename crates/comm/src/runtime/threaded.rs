use super::{RunError, Transport, TransportError};
use crate::message::Payload;
use crate::player::PlayerState;
use crate::rand::SharedRandomness;
use crate::request::{Envelope, PlayerRequest};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::thread::JoinHandle;
use std::time::Duration;
use triad_graph::Edge;

/// Default per-response receive deadline. Generous — local player
/// threads answer in microseconds — but bounded, so a wedged player
/// surfaces as [`RunError::Timeout`] instead of blocking the
/// coordinator forever.
pub const DEFAULT_RECV_TIMEOUT: Duration = Duration::from_secs(10);

/// One OS thread per player, communicating with the coordinator over
/// crossbeam channels — a genuinely concurrent execution of the same
/// protocols.
///
/// Because all protocol randomness is derived from the shared string and
/// the coordinator serializes request/response pairs, the transcript is
/// bit-for-bit identical to [`super::LocalTransport`]'s.
///
/// # Example
///
/// Spawning player threads and driving them through a
/// [`Runtime`](crate::runtime::Runtime); the transport joins its threads
/// on drop:
///
/// ```
/// use triad_comm::{
///     CostModel, Payload, PlayerRequest, Runtime, SharedRandomness, ThreadedTransport,
/// };
/// use triad_graph::{Edge, VertexId};
///
/// let e = |a, b| Edge::new(VertexId(a), VertexId(b));
/// let shares = vec![vec![e(0, 1)], vec![e(1, 2)]];
/// let shared = SharedRandomness::new(7);
/// let transport = ThreadedTransport::spawn(3, &shares, shared);
/// let mut rt = Runtime::new(Box::new(transport), 3, shared, CostModel::Coordinator);
/// assert_eq!(rt.request(0, PlayerRequest::HasEdge(e(0, 1))), Payload::Bit(true));
/// ```
#[derive(Debug)]
pub struct ThreadedTransport {
    senders: Vec<Sender<Envelope>>,
    receivers: Vec<Receiver<Payload<'static>>>,
    handles: Vec<JoinHandle<()>>,
    timeout: Duration,
}

impl ThreadedTransport {
    /// Spawns `shares.len()` player threads.
    pub fn spawn(n: usize, shares: &[Vec<Edge>], shared: SharedRandomness) -> Self {
        let mut senders = Vec::with_capacity(shares.len());
        let mut receivers = Vec::with_capacity(shares.len());
        let mut handles = Vec::with_capacity(shares.len());
        for (j, share) in shares.iter().enumerate() {
            let (req_tx, req_rx) = unbounded::<Envelope>();
            let (resp_tx, resp_rx) = unbounded::<Payload<'static>>();
            let state = PlayerState::new(j, n, share);
            let handle = std::thread::Builder::new()
                .name(format!("triad-player-{j}"))
                .spawn(move || {
                    while let Ok(envelope) = req_rx.recv() {
                        match envelope {
                            Envelope::Request(req) => {
                                let resp = state.handle(&req, &shared);
                                if resp_tx.send(resp).is_err() {
                                    break;
                                }
                            }
                            Envelope::Halt => break,
                        }
                    }
                })
                .expect("failed to spawn player thread");
            senders.push(req_tx);
            receivers.push(resp_rx);
            handles.push(handle);
        }
        ThreadedTransport {
            senders,
            receivers,
            handles,
            timeout: DEFAULT_RECV_TIMEOUT,
        }
    }

    /// Replaces the per-response receive deadline (builder-style).
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// The per-response receive deadline in force.
    pub fn timeout(&self) -> Duration {
        self.timeout
    }
}

impl Transport for ThreadedTransport {
    fn k(&self) -> usize {
        self.senders.len()
    }

    fn try_deliver(
        &mut self,
        player: usize,
        req: &PlayerRequest,
    ) -> Result<Payload<'static>, RunError> {
        // A player whose thread panicked (or already halted) has dropped
        // both channel ends: either the send or the recv fails, and the
        // coordinator gets an error naming the player instead of a
        // deadlock or an opaque unwrap across threads. A wedged (but
        // alive) player trips the receive deadline instead.
        self.senders[player]
            .send(Envelope::Request(req.clone()))
            .map_err(|_| RunError::Transport(TransportError { player }))?;
        self.receivers[player]
            .recv_timeout(self.timeout)
            .map_err(|e| match e {
                RecvTimeoutError::Timeout => RunError::Timeout { player },
                RecvTimeoutError::Disconnected => RunError::Transport(TransportError { player }),
            })
    }
}

impl Drop for ThreadedTransport {
    fn drop(&mut self) {
        for tx in &self.senders {
            // Best effort: a thread that already exited is fine.
            let _ = tx.send(Envelope::Halt);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triad_graph::VertexId;

    #[test]
    fn threaded_roundtrip() {
        let e01 = Edge::new(VertexId(0), VertexId(1));
        let shared = SharedRandomness::new(1);
        let mut t = ThreadedTransport::spawn(3, &[vec![e01], vec![]], shared);
        assert_eq!(t.k(), 2);
        assert_eq!(
            t.deliver(0, &PlayerRequest::HasEdge(e01)),
            Payload::Bit(true)
        );
        assert_eq!(
            t.deliver(1, &PlayerRequest::HasEdge(e01)),
            Payload::Bit(false)
        );
        assert_eq!(
            t.deliver(0, &PlayerRequest::LocalEdgeCount),
            Payload::Count(1)
        );
    }

    #[test]
    fn clean_shutdown_on_drop() {
        let shared = SharedRandomness::new(2);
        let t = ThreadedTransport::spawn(2, &[vec![], vec![]], shared);
        drop(t); // must not hang or panic
    }

    #[test]
    fn panicking_player_surfaces_error_not_deadlock() {
        let shared = SharedRandomness::new(3);
        let mut t = ThreadedTransport::spawn(2, &[vec![], vec![]], shared);
        // Vertex 99 is out of range for n = 2: the player thread panics
        // inside `PlayerState::handle` and drops both channel ends.
        let err = t
            .try_deliver(0, &PlayerRequest::LocalDegree { v: VertexId(99) })
            .unwrap_err();
        assert_eq!(err, RunError::Transport(TransportError { player: 0 }));
        assert!(err.to_string().contains("player 0"), "{err}");
        // The dead player keeps failing cleanly instead of deadlocking...
        assert!(t.try_deliver(0, &PlayerRequest::LocalEdgeCount).is_err());
        // ...while the surviving player still answers.
        assert_eq!(
            t.try_deliver(1, &PlayerRequest::LocalEdgeCount).unwrap(),
            Payload::Count(0)
        );
        // Drop joins the dead thread without propagating its panic.
        drop(t);
    }

    #[test]
    fn deliver_panics_with_player_id_after_thread_death() {
        let shared = SharedRandomness::new(5);
        let mut t = ThreadedTransport::spawn(2, &[vec![], vec![]], shared);
        let _ = t.try_deliver(1, &PlayerRequest::LocalDegree { v: VertexId(42) });
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            t.deliver(1, &PlayerRequest::LocalEdgeCount)
        }));
        let msg = *caught.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("player 1"), "{msg}");
    }

    #[test]
    fn wedged_player_trips_receive_deadline() {
        // Hand-assemble a transport whose "player" receives requests but
        // never answers: the deadline must fire as a Timeout, not hang.
        let (req_tx, req_rx) = unbounded::<Envelope>();
        let (_resp_tx, resp_rx) = unbounded::<Payload<'static>>();
        let handle = std::thread::spawn(move || {
            // Keep the request channel open until Halt so the send
            // succeeds and the failure is unambiguously the deadline.
            while let Ok(envelope) = req_rx.recv() {
                if matches!(envelope, Envelope::Halt) {
                    break;
                }
            }
        });
        let mut t = ThreadedTransport {
            senders: vec![req_tx],
            receivers: vec![resp_rx],
            handles: vec![handle],
            timeout: Duration::from_millis(10),
        };
        let err = t
            .try_deliver(0, &PlayerRequest::LocalEdgeCount)
            .unwrap_err();
        assert_eq!(err, RunError::Timeout { player: 0 });
        drop(t); // Halt + join must still shut down cleanly.
    }

    #[test]
    fn drop_with_requests_in_flight_shuts_down() {
        let e01 = Edge::new(VertexId(0), VertexId(1));
        let shared = SharedRandomness::new(4);
        let t = ThreadedTransport::spawn(2, &[vec![e01], vec![]], shared);
        // Queue a burst of requests without reading any responses; drop
        // must drain/halt both threads without hanging on the replies.
        for _ in 0..16 {
            t.senders[0]
                .send(Envelope::Request(PlayerRequest::LocalEdgeCount))
                .unwrap();
        }
        drop(t);
    }
}
