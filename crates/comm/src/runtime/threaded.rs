use super::Transport;
use crate::message::Payload;
use crate::player::PlayerState;
use crate::rand::SharedRandomness;
use crate::request::{Envelope, PlayerRequest};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::thread::JoinHandle;
use triad_graph::Edge;

/// One OS thread per player, communicating with the coordinator over
/// crossbeam channels — a genuinely concurrent execution of the same
/// protocols.
///
/// Because all protocol randomness is derived from the shared string and
/// the coordinator serializes request/response pairs, the transcript is
/// bit-for-bit identical to [`super::LocalTransport`]'s.
#[derive(Debug)]
pub struct ThreadedTransport {
    senders: Vec<Sender<Envelope>>,
    receivers: Vec<Receiver<Payload>>,
    handles: Vec<JoinHandle<()>>,
}

impl ThreadedTransport {
    /// Spawns `shares.len()` player threads.
    pub fn spawn(n: usize, shares: &[Vec<Edge>], shared: SharedRandomness) -> Self {
        let mut senders = Vec::with_capacity(shares.len());
        let mut receivers = Vec::with_capacity(shares.len());
        let mut handles = Vec::with_capacity(shares.len());
        for (j, share) in shares.iter().enumerate() {
            let (req_tx, req_rx) = unbounded::<Envelope>();
            let (resp_tx, resp_rx) = unbounded::<Payload>();
            let state = PlayerState::new(j, n, share);
            let handle = std::thread::Builder::new()
                .name(format!("triad-player-{j}"))
                .spawn(move || {
                    while let Ok(envelope) = req_rx.recv() {
                        match envelope {
                            Envelope::Request(req) => {
                                let resp = state.handle(&req, &shared);
                                if resp_tx.send(resp).is_err() {
                                    break;
                                }
                            }
                            Envelope::Halt => break,
                        }
                    }
                })
                .expect("failed to spawn player thread");
            senders.push(req_tx);
            receivers.push(resp_rx);
            handles.push(handle);
        }
        ThreadedTransport {
            senders,
            receivers,
            handles,
        }
    }
}

impl Transport for ThreadedTransport {
    fn k(&self) -> usize {
        self.senders.len()
    }

    fn deliver(&mut self, player: usize, req: &PlayerRequest) -> Payload {
        self.senders[player]
            .send(Envelope::Request(req.clone()))
            .expect("player thread hung up");
        self.receivers[player]
            .recv()
            .expect("player thread hung up")
    }
}

impl Drop for ThreadedTransport {
    fn drop(&mut self) {
        for tx in &self.senders {
            // Best effort: a thread that already exited is fine.
            let _ = tx.send(Envelope::Halt);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triad_graph::VertexId;

    #[test]
    fn threaded_roundtrip() {
        let e01 = Edge::new(VertexId(0), VertexId(1));
        let shared = SharedRandomness::new(1);
        let mut t = ThreadedTransport::spawn(3, &[vec![e01], vec![]], shared);
        assert_eq!(t.k(), 2);
        assert_eq!(
            t.deliver(0, &PlayerRequest::HasEdge(e01)),
            Payload::Bit(true)
        );
        assert_eq!(
            t.deliver(1, &PlayerRequest::HasEdge(e01)),
            Payload::Bit(false)
        );
        assert_eq!(
            t.deliver(0, &PlayerRequest::LocalEdgeCount),
            Payload::Count(1)
        );
    }

    #[test]
    fn clean_shutdown_on_drop() {
        let shared = SharedRandomness::new(2);
        let t = ThreadedTransport::spawn(2, &[vec![], vec![]], shared);
        drop(t); // must not hang or panic
    }
}
