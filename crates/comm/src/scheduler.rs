//! Multi-tenant session scheduler.
//!
//! One [`Pool`] of workers, many independent query *sessions*: each
//! session is a sequence of repetitions with serial early-exit
//! semantics (stop at the first *final* item — a witness or an error),
//! exactly what [`Pool::ordered_map_until`] provides for a single
//! sweep. The scheduler flattens every session's repetitions into one
//! shared claim queue, so workers **steal across sessions**: a worker
//! that finishes session A's last repetition immediately picks up
//! session B's next one, and a thousand one-repetition sessions
//! saturate the pool just as well as one thousand-repetition sweep.
//!
//! # Determinism contract
//!
//! For every session the scheduler returns exactly the *serial prefix*
//! of items a standalone serial loop (or `ordered_map_until` on its
//! own) would have produced: repetitions `0..=s` where `s` is the
//! smallest repetition whose item is final, or all repetitions when
//! none is. Speculative items computed past a session's stopping point
//! are discarded before the caller ever sees them. Higher layers reduce
//! each prefix in repetition order (`CommStats::merged`,
//! `Tally::absorb`), so a batched session is **byte-identical** to the
//! same sweep run alone, at any worker count — enforced by
//! `tests/scheduler_differential.rs`.
//!
//! # How the early exit works across sessions
//!
//! Each session owns an atomic cutoff, initially `usize::MAX`. A worker
//! claiming global index `i` maps it to `(session s, repetition r)`; if
//! `r` is strictly past `s`'s cutoff the item is skipped (the session
//! already found its stopping point). After computing an item the
//! worker tests it with the session's finality predicate and lowers the
//! cutoff with `fetch_min(r)`. The cutoff only decreases, and the
//! repetition that *set* it was fully computed before it was published,
//! so every repetition in the final serial prefix (`r <= s`'s final
//! cutoff) is guaranteed to have been computed, never skipped. This is
//! the same serial-prefix argument [`Pool::ordered_map_until`] makes
//! for a single sweep, replicated per session over one shared queue.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::pool::Pool;

/// One session's work description: `reps` independent repetitions,
/// computed by [`run_rep`](SessionJob::run_rep) and cut short at the
/// first item for which [`is_final`](SessionJob::is_final) holds.
///
/// Implementations must be deterministic in `rep` — the scheduler may
/// compute a repetition speculatively and discard it, or (at one
/// worker) never compute it at all.
pub trait SessionJob: Sync {
    /// The per-repetition result.
    type Item: Send;

    /// Number of repetitions this session wants (the scheduler treats
    /// `0` as an empty session).
    fn reps(&self) -> usize;

    /// Computes repetition `rep` (`0 <= rep < self.reps()`).
    fn run_rep(&self, rep: usize) -> Self::Item;

    /// `true` if `item` ends the session early (a witness, an error).
    fn is_final(&self, item: &Self::Item) -> bool;
}

/// A closure-based [`SessionJob`] for callers that don't want a named
/// type: `reps` repetitions of `run`, stopped by `is_final`.
pub struct FnSession<T, R, F>
where
    R: Fn(usize) -> T + Sync,
    F: Fn(&T) -> bool + Sync,
    T: Send,
{
    reps: usize,
    run: R,
    is_final: F,
}

impl<T, R, F> FnSession<T, R, F>
where
    R: Fn(usize) -> T + Sync,
    F: Fn(&T) -> bool + Sync,
    T: Send,
{
    /// A session of `reps` repetitions of `run`, ended early at the
    /// first item for which `is_final` holds.
    pub fn new(reps: usize, run: R, is_final: F) -> Self {
        FnSession {
            reps,
            run,
            is_final,
        }
    }
}

impl<T, R, F> SessionJob for FnSession<T, R, F>
where
    R: Fn(usize) -> T + Sync,
    F: Fn(&T) -> bool + Sync,
    T: Send,
{
    type Item = T;

    fn reps(&self) -> usize {
        self.reps
    }

    fn run_rep(&self, rep: usize) -> T {
        (self.run)(rep)
    }

    fn is_final(&self, item: &T) -> bool {
        (self.is_final)(item)
    }
}

/// An opaque ticket identifying one submitted session within a batch —
/// handed out by higher-level batch builders (e.g.
/// `triad_protocols::session::SessionBatch`) and redeemed against the
/// batch's results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionHandle(usize);

impl SessionHandle {
    /// A handle for the session at `index` in submission order.
    pub fn new(index: usize) -> Self {
        SessionHandle(index)
    }

    /// The session's index in submission order.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// Runs every session in `jobs` over `pool`, stealing work across
/// sessions, and returns each session's serial prefix of items (see the
/// [module docs](self) for the determinism contract).
///
/// The flattened index space is session-major: all of session 0's
/// repetitions, then session 1's, and so on. At one worker this
/// degenerates to running the sessions serially in submission order,
/// which is the reference schedule the parallel path must reproduce.
pub fn run_sessions<J: SessionJob>(pool: &Pool, jobs: &[J]) -> Vec<Vec<J::Item>> {
    // Prefix sums over repetition counts: session s owns global indices
    // offsets[s] .. offsets[s + 1].
    let mut offsets = Vec::with_capacity(jobs.len() + 1);
    let mut total = 0usize;
    offsets.push(0);
    for job in jobs {
        total = total
            .checked_add(job.reps())
            .expect("total session repetitions overflow usize");
        offsets.push(total);
    }

    // Per-session early-exit cutoffs: the smallest repetition index
    // known to be final, or usize::MAX while the session is still live.
    let cutoffs: Vec<AtomicUsize> = (0..jobs.len())
        .map(|_| AtomicUsize::new(usize::MAX))
        .collect();

    let slots = pool.ordered_map(total, |i| {
        // Map the global index to (session, repetition). Sessions are
        // contiguous, so a binary search over the prefix sums finds the
        // owner; `partition_point` returns the first offset > i.
        let s = offsets.partition_point(|&off| off <= i) - 1;
        let r = i - offsets[s];
        if r > cutoffs[s].load(Ordering::SeqCst) {
            // The session already published an earlier stopping point;
            // this repetition cannot be part of its serial prefix.
            return None;
        }
        let item = jobs[s].run_rep(r);
        if jobs[s].is_final(&item) {
            cutoffs[s].fetch_min(r, Ordering::SeqCst);
        }
        Some(item)
    });

    // Slice the flat results back into per-session serial prefixes.
    let mut slots = slots.into_iter();
    let mut out = Vec::with_capacity(jobs.len());
    for (s, job) in jobs.iter().enumerate() {
        let reps = job.reps();
        let mut prefix = Vec::new();
        let mut done = false;
        for slot in slots.by_ref().take(reps) {
            if done {
                continue; // drain this session's remaining slots
            }
            match slot {
                Some(item) => {
                    let is_final = job.is_final(&item);
                    prefix.push(item);
                    if is_final {
                        done = true;
                    }
                }
                None => {
                    // A skipped repetition is strictly past the final
                    // cutoff, so the prefix must already have ended.
                    debug_assert!(
                        false,
                        "session {s}: skipped repetition inside the serial prefix"
                    );
                    done = true;
                }
            }
        }
        out.push(prefix);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn serial_reference<J: SessionJob>(job: &J) -> Vec<J::Item> {
        let mut out = Vec::new();
        for r in 0..job.reps() {
            let item = job.run_rep(r);
            let stop = job.is_final(&item);
            out.push(item);
            if stop {
                break;
            }
        }
        out
    }

    fn squares_until(reps: usize, stop_at: Option<usize>) -> impl SessionJob<Item = usize> {
        FnSession::new(reps, |r| r * r, move |&v| Some(v) == stop_at.map(|s| s * s))
    }

    #[test]
    fn matches_serial_reference_at_every_thread_count() {
        let jobs: Vec<_> = vec![
            squares_until(7, None),
            squares_until(5, Some(2)),
            squares_until(1, None),
            squares_until(9, Some(0)),
            squares_until(4, Some(99)), // predicate never fires
        ];
        let expected: Vec<Vec<usize>> = jobs.iter().map(serial_reference).collect();
        for threads in [1, 2, 4, 8] {
            let got = run_sessions(&Pool::new(threads), &jobs);
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn empty_batch_and_empty_sessions() {
        type UnitSession = FnSession<usize, fn(usize) -> usize, fn(&usize) -> bool>;
        let none: Vec<UnitSession> = Vec::new();
        assert!(run_sessions(&Pool::new(4), &none).is_empty());

        let jobs = vec![squares_until(0, None), squares_until(3, None)];
        let got = run_sessions(&Pool::new(2), &jobs);
        assert_eq!(got, vec![vec![], vec![0, 1, 4]]);
    }

    #[test]
    fn early_exit_is_per_session_not_global() {
        // Session 0 stops at its very first repetition; session 1 must
        // still run to completion.
        let jobs = vec![squares_until(6, Some(0)), squares_until(6, None)];
        let got = run_sessions(&Pool::new(4), &jobs);
        assert_eq!(got[0], vec![0]);
        assert_eq!(got[1], vec![0, 1, 4, 9, 16, 25]);
    }

    #[test]
    fn thousands_of_tiny_sessions() {
        let jobs: Vec<_> = (0..2000).map(|_| squares_until(1, None)).collect();
        let got = run_sessions(&Pool::new(4), &jobs);
        assert_eq!(got.len(), 2000);
        assert!(got.iter().all(|p| p == &vec![0]));
    }

    #[test]
    fn handles_are_stable_indices() {
        let h = SessionHandle::new(17);
        assert_eq!(h.index(), 17);
        assert_eq!(h, SessionHandle::new(17));
    }
}
