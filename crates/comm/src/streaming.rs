//! The data-stream model and its reduction to one-way communication
//! (§4.2.2 of the paper, after \[4\]).
//!
//! A streaming algorithm reads the edges once, in order, holding bounded
//! memory; its space complexity is the peak memory over the run. The
//! classic reduction: split the stream at player boundaries — the memory
//! snapshot at each boundary *is* the message of a one-way protocol, so
//! one-way communication lower bounds are streaming space lower bounds.
//! [`stream_as_one_way`] performs exactly this accounting.

use crate::bits::BitCost;
use crate::transcript::CommStats;
use triad_graph::Edge;

/// A single-pass streaming algorithm over edges.
pub trait StreamAlgorithm {
    /// What the algorithm outputs at end of stream.
    type Output;

    /// Processes the next stream item.
    fn process(&mut self, edge: Edge);

    /// The current memory footprint under the bit model
    /// (`⌈log n⌉`/vertex, twice per edge), for a graph on `n` vertices.
    fn memory_bits(&self, n: usize) -> BitCost;

    /// The output at end of stream.
    fn output(&self) -> Self::Output;
}

/// The result of one streaming pass.
#[derive(Debug, Clone)]
pub struct StreamRun<O> {
    /// The algorithm's output.
    pub output: O,
    /// Peak memory (bits) over the pass.
    pub peak_memory_bits: u64,
    /// Number of stream items processed.
    pub items: u64,
}

/// Runs one pass over `edges`, tracking peak memory.
///
/// # Example
///
/// ```
/// use triad_comm::{run_stream, EdgeReservoir, SharedRandomness};
/// use triad_graph::{Edge, VertexId};
///
/// let edges: Vec<Edge> =
///     (0..20).map(|i| Edge::new(VertexId(i), VertexId(i + 20))).collect();
/// let alg = EdgeReservoir::new(SharedRandomness::new(1), 7, 5);
/// let run = run_stream(alg, 40, edges);
/// assert_eq!(run.output.len(), 5); // a uniform 5-edge sample
/// assert_eq!(run.items, 20);
/// ```
pub fn run_stream<A, I>(mut alg: A, n: usize, edges: I) -> StreamRun<A::Output>
where
    A: StreamAlgorithm,
    I: IntoIterator<Item = Edge>,
{
    let mut peak = alg.memory_bits(n).get();
    let mut items = 0u64;
    for e in edges {
        alg.process(e);
        items += 1;
        peak = peak.max(alg.memory_bits(n).get());
    }
    StreamRun {
        output: alg.output(),
        peak_memory_bits: peak,
        items,
    }
}

/// The result of running a streaming algorithm as a one-way protocol.
#[derive(Debug, Clone)]
pub struct StreamOneWayRun<O> {
    /// The output at end of stream.
    pub output: O,
    /// The memory snapshot sizes at each player boundary — exactly the
    /// one-way messages' bit costs.
    pub boundary_bits: Vec<u64>,
    /// Aggregate one-way statistics.
    pub stats: CommStats,
    /// Peak memory over the whole pass (≥ every boundary snapshot).
    pub peak_memory_bits: u64,
}

/// Runs `alg` over the concatenation of the players' shares in player
/// order, charging the memory snapshot at each share boundary as a
/// one-way message — the §4.2.2 reduction, executable.
///
/// Any space-`S` algorithm therefore yields a one-way protocol of cost
/// `(k−1)·S`, and conversely the paper's `Ω(n^{1/4})` one-way bound is
/// an `Ω(n^{1/4})` space bound for triangle-edge detection.
pub fn stream_as_one_way<A>(
    mut alg: A,
    n: usize,
    shares: &[Vec<Edge>],
) -> StreamOneWayRun<A::Output>
where
    A: StreamAlgorithm,
{
    assert!(
        shares.len() >= 2,
        "one-way model needs at least two players"
    );
    let mut boundary_bits = Vec::with_capacity(shares.len() - 1);
    let mut peak = alg.memory_bits(n).get();
    for (j, share) in shares.iter().enumerate() {
        for e in share {
            alg.process(*e);
            peak = peak.max(alg.memory_bits(n).get());
        }
        if j + 1 < shares.len() {
            boundary_bits.push(alg.memory_bits(n).get());
        }
    }
    let total: u64 = boundary_bits.iter().sum();
    StreamOneWayRun {
        output: alg.output(),
        stats: CommStats {
            total_bits: total,
            rounds: boundary_bits.len() as u64,
            messages: boundary_bits.len() as u64,
            max_player_sent_bits: boundary_bits.iter().copied().max().unwrap_or(0),
        },
        boundary_bits,
        peak_memory_bits: peak,
    }
}

/// A bounded edge reservoir: keeps the `capacity` lowest-ranked edges
/// under a public permutation — a uniform sample of the distinct edges
/// seen so far, in `O(capacity·log n)` memory. The simplest non-trivial
/// [`StreamAlgorithm`]; used as a building block and in tests.
#[derive(Debug, Clone)]
pub struct EdgeReservoir {
    shared: crate::rand::SharedRandomness,
    tag: u64,
    capacity: usize,
    /// Kept edges as a max-heap by rank: O(log capacity) per eviction.
    kept: std::collections::BinaryHeap<(u64, Edge)>,
    /// Membership mirror of the heap for O(1) duplicate checks.
    members: std::collections::HashSet<Edge>,
}

impl EdgeReservoir {
    /// A reservoir of at most `capacity` edges, ranked by the public
    /// permutation `(shared, tag)`.
    pub fn new(shared: crate::rand::SharedRandomness, tag: u64, capacity: usize) -> Self {
        EdgeReservoir {
            shared,
            tag,
            capacity,
            kept: std::collections::BinaryHeap::new(),
            members: std::collections::HashSet::new(),
        }
    }

    /// The sampled edges (unordered).
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.kept.iter().map(|(_, e)| *e)
    }
}

impl StreamAlgorithm for EdgeReservoir {
    type Output = Vec<Edge>;

    fn process(&mut self, edge: Edge) {
        if self.members.contains(&edge) {
            return; // duplicates in the stream are free
        }
        let rank = self.shared.edge_rank(self.tag, edge).0;
        if self.kept.len() < self.capacity {
            self.kept.push((rank, edge));
            self.members.insert(edge);
        } else if let Some((max_rank, _)) = self.kept.peek() {
            if rank < *max_rank {
                let (_, evicted) = self.kept.pop().expect("non-empty reservoir");
                self.members.remove(&evicted);
                self.kept.push((rank, edge));
                self.members.insert(edge);
            }
        }
    }

    fn memory_bits(&self, n: usize) -> BitCost {
        BitCost(self.kept.len() as u64 * crate::bits::bits_per_edge(n))
    }

    fn output(&self) -> Vec<Edge> {
        self.kept.iter().map(|(_, e)| *e).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rand::SharedRandomness;
    use triad_graph::VertexId;

    fn e(a: u32, b: u32) -> Edge {
        Edge::new(VertexId(a), VertexId(b))
    }

    #[test]
    fn reservoir_respects_capacity_and_memory() {
        let shared = SharedRandomness::new(1);
        let alg = EdgeReservoir::new(shared, 7, 3);
        let edges: Vec<Edge> = (0..20).map(|i| e(i, i + 20)).collect();
        let run = run_stream(alg, 64, edges);
        assert_eq!(run.output.len(), 3);
        assert_eq!(run.items, 20);
        // 64 vertices ⇒ 6 bits per vertex, 12 per edge, 3 kept.
        assert_eq!(run.peak_memory_bits, 36);
    }

    #[test]
    fn reservoir_sample_is_rank_minimal() {
        let shared = SharedRandomness::new(2);
        let tag = 5;
        let edges: Vec<Edge> = (0..30).map(|i| e(i, i + 30)).collect();
        let alg = EdgeReservoir::new(shared, tag, 4);
        let run = run_stream(alg, 64, edges.clone());
        let mut ranks: Vec<u64> = edges.iter().map(|e| shared.edge_rank(tag, *e).0).collect();
        ranks.sort_unstable();
        let mut got: Vec<u64> = run
            .output
            .iter()
            .map(|e| shared.edge_rank(tag, *e).0)
            .collect();
        got.sort_unstable();
        assert_eq!(
            got,
            ranks[..4].to_vec(),
            "reservoir must keep the 4 lowest ranks"
        );
    }

    #[test]
    fn duplicates_are_free() {
        let shared = SharedRandomness::new(3);
        let alg = EdgeReservoir::new(shared, 1, 10);
        let run = run_stream(alg, 16, vec![e(0, 1), e(0, 1), e(0, 1)]);
        assert_eq!(run.output.len(), 1);
    }

    #[test]
    fn reduction_charges_boundary_snapshots() {
        let shared = SharedRandomness::new(4);
        let alg = EdgeReservoir::new(shared, 2, 8);
        let shares = vec![
            (0..4).map(|i| e(i, i + 30)).collect::<Vec<_>>(),
            (4..8).map(|i| e(i, i + 30)).collect(),
            (8..12).map(|i| e(i, i + 30)).collect(),
        ];
        let run = stream_as_one_way(alg, 64, &shares);
        assert_eq!(run.boundary_bits.len(), 2);
        // After 4 and 8 distinct edges with capacity 8: 4 and 8 edges held.
        assert_eq!(run.boundary_bits[0], 4 * 12);
        assert_eq!(run.boundary_bits[1], 8 * 12);
        assert_eq!(run.stats.total_bits, 12 * 12);
        assert!(run.peak_memory_bits >= run.boundary_bits[1]);
        assert_eq!(run.output.len(), 8);
    }
}
