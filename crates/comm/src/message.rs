//! Message payloads and their exact bit lengths.

use crate::bits::{bits_for_count, bits_per_edge, bits_per_vertex, BitCost};
use std::borrow::Cow;
use triad_graph::kernels::bitset::{EdgeBitset, EdgeBitsetIter};
use triad_graph::{Edge, Triangle, VertexId};

/// Which physical representation an edge-set payload uses on the wire
/// and in the referee. Representation is a **runtime choice, never an
/// accounting one**: [`Payload::Edges`] and [`Payload::EdgeBits`] over
/// the same edge set have identical [`Payload::bit_len`], identical
/// referee verdicts, and identical transcripts (pinned by
/// `tests/payload_differential.rs`); only wire bytes and referee time
/// differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PayloadRepr {
    /// Pick per payload: the packed bitset past the
    /// [`dense_kernel_wins`](triad_graph::kernels::dense_kernel_wins)
    /// density gate, the edge list below it.
    #[default]
    Auto,
    /// Always the [`Payload::Edges`] list (the historical behavior).
    Edges,
    /// Always the [`Payload::EdgeBits`] bitset (forced dense — what the
    /// differential campaign uses to cover sparse inputs too).
    Bits,
}

impl PayloadRepr {
    /// Whether an edge set of `count` edges over `n` vertices should
    /// travel as a bitset under this policy.
    pub fn use_bits(self, count: usize, n: usize) -> bool {
        match self {
            PayloadRepr::Edges => false,
            PayloadRepr::Bits => true,
            PayloadRepr::Auto => triad_graph::kernels::dense_kernel_wins(count, n),
        }
    }
}

impl std::str::FromStr for PayloadRepr {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "auto" => Ok(PayloadRepr::Auto),
            "edges" => Ok(PayloadRepr::Edges),
            "bits" => Ok(PayloadRepr::Bits),
            other => Err(format!(
                "unknown payload representation `{other}` (expected auto|edges|bits)"
            )),
        }
    }
}

impl std::fmt::Display for PayloadRepr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PayloadRepr::Auto => "auto",
            PayloadRepr::Edges => "edges",
            PayloadRepr::Bits => "bits",
        })
    }
}

/// The content of one message in either direction.
///
/// Each variant has an exact bit cost under the model of [`crate::bits`];
/// `Option` flags cost one bit, vectors carry a length prefix.
///
/// Edge lists are [`Cow`]s so a player can send a borrowed slice of its
/// partition without cloning (the hot path of the exact baseline and the
/// simultaneous samplers; see `docs/RUNTIME.md`). Owned and borrowed
/// edge lists have identical bit cost — borrowing is a runtime
/// optimization, never an accounting change. Construct with
/// `Payload::Edges(vec.into())` or `Payload::Edges(slice.into())`.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload<'a> {
    /// Nothing (costs 0; used for fire-and-forget control).
    Empty,
    /// One boolean.
    Bit(bool),
    /// A fixed-width bit string (value, width).
    Bits(u64, u32),
    /// An unbounded non-negative integer (binary length).
    Count(u64),
    /// An optional vertex id.
    Vertex(Option<VertexId>),
    /// A list of vertex ids.
    Vertices(Vec<VertexId>),
    /// An optional edge.
    Edge(Option<Edge>),
    /// A list of edges, owned or borrowed from the sender's partition.
    Edges(Cow<'a, [Edge]>),
    /// The same edge-set content as [`Payload::Edges`], packed as a
    /// word-parallel [`EdgeBitset`] (the ISSUE's "bitset payload"; the
    /// name avoids colliding with the fixed-width [`Payload::Bits`]).
    /// Its bit cost is **schema-identical** to `Edges` — a length
    /// prefix plus `⌈2·log₂ n⌉` per edge — because representation must
    /// never change the paper's closed-form accounting. Construct
    /// through [`Payload::edge_set`] to let a [`PayloadRepr`] policy
    /// pick the representation.
    EdgeBits(Cow<'a, EdgeBitset>),
    /// An optional triangle (three vertex ids).
    Triangle(Option<Triangle>),
    /// A probability, quantized to 32 bits (protocol parameters sent by
    /// the coordinator).
    Probability(f64),
}

impl<'a> Payload<'a> {
    /// Exact cost of the payload in a graph on `n` vertices.
    pub fn bit_len(&self, n: usize) -> BitCost {
        let v = bits_per_vertex(n);
        let e = bits_per_edge(n);
        let cost = match self {
            Payload::Empty => 0,
            Payload::Bit(_) => 1,
            Payload::Bits(_, width) => u64::from(*width),
            Payload::Count(x) => bits_for_count(*x),
            Payload::Vertex(o) => 1 + if o.is_some() { v } else { 0 },
            Payload::Vertices(vs) => bits_for_count(vs.len() as u64) + v * vs.len() as u64,
            Payload::Edge(o) => 1 + if o.is_some() { e } else { 0 },
            Payload::Edges(es) => bits_for_count(es.len() as u64) + e * es.len() as u64,
            Payload::EdgeBits(set) => bits_for_count(set.len() as u64) + e * set.len() as u64,
            Payload::Triangle(o) => 1 + if o.is_some() { 3 * v } else { 0 },
            Payload::Probability(_) => 32,
        };
        BitCost(cost)
    }

    /// The edges of an `Edges` payload.
    ///
    /// In debug builds, calling this on any other variant panics — a
    /// non-`Edges` payload at an edge-consuming call site is a protocol
    /// wiring bug that the old silent `&[]` fallback used to mask. Call
    /// sites that legitimately skip non-edge payloads (e.g.
    /// [`crate::simultaneous::SimMessage::edges`]) use
    /// [`Payload::iter_edges`] or [`Payload::try_as_edges`] instead.
    pub fn as_edges(&self) -> &[Edge] {
        debug_assert!(
            matches!(self, Payload::Edges(_)),
            "as_edges on a non-Edges payload ({self:?}); use try_as_edges \
             where other variants are expected"
        );
        self.try_as_edges().unwrap_or(&[])
    }

    /// The edges when this payload is [`Payload::Edges`], `None`
    /// otherwise.
    pub fn try_as_edges(&self) -> Option<&[Edge]> {
        match self {
            Payload::Edges(es) => Some(es),
            _ => None,
        }
    }

    /// Builds the edge-set payload whose representation `repr` picks
    /// for this density: a borrowed-or-owned [`Payload::Edges`] list,
    /// or the same set packed into a [`Payload::EdgeBits`] bitset. The
    /// two choices are cost-identical and verdict-identical.
    pub fn edge_set(repr: PayloadRepr, n: usize, edges: Cow<'a, [Edge]>) -> Payload<'a> {
        if repr.use_bits(edges.len(), n) {
            Payload::EdgeBits(Cow::Owned(EdgeBitset::from_edges(n, edges.iter().copied())))
        } else {
            Payload::Edges(edges)
        }
    }

    /// The edges this payload carries, in the payload's own order
    /// (list order for [`Payload::Edges`], canonical order for
    /// [`Payload::EdgeBits`], empty for every other variant). This is
    /// how edge-consuming referees stay representation-agnostic.
    pub fn iter_edges(&self) -> PayloadEdges<'_> {
        match self {
            Payload::Edges(es) => PayloadEdges::Slice(es.iter()),
            Payload::EdgeBits(set) => PayloadEdges::Bits(set.edges()),
            _ => PayloadEdges::None,
        }
    }

    /// The number of edges an edge-set payload carries (`None` for
    /// non-edge-set variants).
    pub fn edge_set_len(&self) -> Option<usize> {
        match self {
            Payload::Edges(es) => Some(es.len()),
            Payload::EdgeBits(set) => Some(set.len()),
            _ => None,
        }
    }

    /// Clones any borrowed edge list, detaching the payload from its
    /// sender's lifetime (needed to move payloads across threads).
    pub fn into_owned(self) -> Payload<'static> {
        match self {
            Payload::Empty => Payload::Empty,
            Payload::Bit(b) => Payload::Bit(b),
            Payload::Bits(v, w) => Payload::Bits(v, w),
            Payload::Count(c) => Payload::Count(c),
            Payload::Vertex(o) => Payload::Vertex(o),
            Payload::Vertices(vs) => Payload::Vertices(vs),
            Payload::Edge(o) => Payload::Edge(o),
            Payload::Edges(es) => Payload::Edges(Cow::Owned(es.into_owned())),
            Payload::EdgeBits(set) => Payload::EdgeBits(Cow::Owned(set.into_owned())),
            Payload::Triangle(o) => Payload::Triangle(o),
            Payload::Probability(p) => Payload::Probability(p),
        }
    }
}

/// Iterator over the edges of one payload, whatever its representation
/// — the return type of [`Payload::iter_edges`].
#[derive(Debug, Clone)]
pub enum PayloadEdges<'p> {
    /// A non-edge-set payload: nothing to yield.
    None,
    /// Walking a [`Payload::Edges`] list.
    Slice(std::slice::Iter<'p, Edge>),
    /// Walking a [`Payload::EdgeBits`] bitset in canonical order.
    Bits(EdgeBitsetIter<'p>),
}

impl Iterator for PayloadEdges<'_> {
    type Item = Edge;

    fn next(&mut self) -> Option<Edge> {
        match self {
            PayloadEdges::None => None,
            PayloadEdges::Slice(it) => it.next().copied(),
            PayloadEdges::Bits(it) => it.next(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    #[test]
    fn scalar_costs() {
        let n = 1024; // 10 bits per vertex
        assert_eq!(Payload::Empty.bit_len(n), BitCost(0));
        assert_eq!(Payload::Bit(true).bit_len(n), BitCost(1));
        assert_eq!(Payload::Bits(0b101, 3).bit_len(n), BitCost(3));
        assert_eq!(Payload::Count(255).bit_len(n), BitCost(8));
        assert_eq!(Payload::Probability(0.5).bit_len(n), BitCost(32));
    }

    #[test]
    fn option_costs() {
        let n = 1024;
        assert_eq!(Payload::Vertex(None).bit_len(n), BitCost(1));
        assert_eq!(Payload::Vertex(Some(v(3))).bit_len(n), BitCost(11));
        assert_eq!(Payload::Edge(None).bit_len(n), BitCost(1));
        assert_eq!(
            Payload::Edge(Some(Edge::new(v(0), v(1)))).bit_len(n),
            BitCost(21)
        );
        assert_eq!(Payload::Triangle(None).bit_len(n), BitCost(1));
        assert_eq!(
            Payload::Triangle(Some(Triangle::new(v(0), v(1), v(2)))).bit_len(n),
            BitCost(31)
        );
    }

    #[test]
    fn vector_costs_scale_linearly() {
        let n = 1024;
        let es: Vec<Edge> = (0..10).map(|i| Edge::new(v(i), v(i + 1))).collect();
        // length prefix of 10 = 4 bits, plus 10 edges × 20 bits
        assert_eq!(
            Payload::Edges(es.clone().into()).bit_len(n),
            BitCost(4 + 200)
        );
        let vs: Vec<VertexId> = (0..3).map(v).collect();
        assert_eq!(Payload::Vertices(vs).bit_len(n), BitCost(2 + 30));
        assert_eq!(Payload::Edges(vec![].into()).bit_len(n), BitCost(1));
    }

    #[test]
    fn borrowed_and_owned_edges_cost_the_same() {
        let n = 1024;
        let es: Vec<Edge> = (0..7).map(|i| Edge::new(v(i), v(i + 1))).collect();
        let owned = Payload::Edges(es.clone().into());
        let borrowed = Payload::Edges(Cow::Borrowed(es.as_slice()));
        assert_eq!(owned.bit_len(n), borrowed.bit_len(n));
        assert_eq!(owned, borrowed, "content equality ignores ownership");
        assert_eq!(borrowed.into_owned(), owned);
    }

    #[test]
    fn as_edges_accessor() {
        let es = vec![Edge::new(v(0), v(1))];
        assert_eq!(Payload::Edges(es.clone().into()).as_edges(), es.as_slice());
        assert_eq!(
            Payload::Edges(es.clone().into()).try_as_edges(),
            Some(es.as_slice())
        );
        assert_eq!(Payload::Bit(false).try_as_edges(), None);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "as_edges on a non-Edges payload")]
    fn as_edges_rejects_other_variants_in_debug() {
        let _ = Payload::Bit(false).as_edges();
    }

    #[test]
    fn edge_bits_cost_is_schema_identical_to_edges() {
        for (n, m) in [(16, 0), (16, 5), (1024, 200), (70, 69)] {
            let es: Vec<Edge> = (0..m as u32).map(|i| Edge::new(v(i), v(i + 1))).collect();
            let list = Payload::Edges(es.clone().into());
            let bits = Payload::EdgeBits(Cow::Owned(EdgeBitset::from_edges(n, es.iter().copied())));
            assert_eq!(
                list.bit_len(n),
                bits.bit_len(n),
                "n={n} m={m}: representation changed the accounting"
            );
            assert_eq!(bits.edge_set_len(), Some(m));
        }
    }

    #[test]
    fn iter_edges_is_representation_agnostic() {
        let es: Vec<Edge> = vec![
            Edge::new(v(0), v(1)),
            Edge::new(v(1), v(3)),
            Edge::new(v(2), v(3)),
        ];
        let list = Payload::Edges(es.clone().into());
        let bits = Payload::EdgeBits(Cow::Owned(EdgeBitset::from_edges(8, es.iter().copied())));
        let from_list: Vec<Edge> = list.iter_edges().collect();
        let mut from_bits: Vec<Edge> = bits.iter_edges().collect();
        from_bits.sort_unstable();
        let mut sorted = es.clone();
        sorted.sort_unstable();
        assert_eq!(from_list, es);
        assert_eq!(from_bits, sorted);
        assert_eq!(Payload::Bit(true).iter_edges().count(), 0);
        assert_eq!(bits.clone().into_owned(), bits);
    }

    #[test]
    fn edge_set_constructor_honors_the_policy() {
        // Dense enough that Auto picks bits: K20 over n = 70.
        let mut dense = Vec::new();
        for a in 0..20u32 {
            for b in (a + 1)..20 {
                dense.push(Edge::new(v(a), v(b)));
            }
        }
        let sparse: Vec<Edge> = (0..5u32).map(|i| Edge::new(v(i), v(i + 1))).collect();
        let n = 70;
        assert!(matches!(
            Payload::edge_set(PayloadRepr::Auto, n, dense.clone().into()),
            Payload::EdgeBits(_)
        ));
        assert!(matches!(
            Payload::edge_set(PayloadRepr::Auto, n, sparse.clone().into()),
            Payload::Edges(_)
        ));
        assert!(matches!(
            Payload::edge_set(PayloadRepr::Edges, n, dense.clone().into()),
            Payload::Edges(_)
        ));
        let forced = Payload::edge_set(PayloadRepr::Bits, n, sparse.clone().into());
        assert!(matches!(forced, Payload::EdgeBits(_)));
        assert_eq!(
            forced.bit_len(n),
            Payload::Edges(sparse.into()).bit_len(n),
            "forcing the representation must not change the cost"
        );
    }

    #[test]
    fn payload_repr_parses_and_displays() {
        for (s, r) in [
            ("auto", PayloadRepr::Auto),
            ("edges", PayloadRepr::Edges),
            ("bits", PayloadRepr::Bits),
        ] {
            assert_eq!(s.parse::<PayloadRepr>().unwrap(), r);
            assert_eq!(r.to_string(), s);
        }
        assert!("dense".parse::<PayloadRepr>().is_err());
        assert_eq!(PayloadRepr::default(), PayloadRepr::Auto);
    }
}
