//! Message payloads and their exact bit lengths.

use crate::bits::{bits_for_count, bits_per_edge, bits_per_vertex, BitCost};
use std::borrow::Cow;
use triad_graph::{Edge, Triangle, VertexId};

/// The content of one message in either direction.
///
/// Each variant has an exact bit cost under the model of [`crate::bits`];
/// `Option` flags cost one bit, vectors carry a length prefix.
///
/// Edge lists are [`Cow`]s so a player can send a borrowed slice of its
/// partition without cloning (the hot path of the exact baseline and the
/// simultaneous samplers; see `docs/RUNTIME.md`). Owned and borrowed
/// edge lists have identical bit cost — borrowing is a runtime
/// optimization, never an accounting change. Construct with
/// `Payload::Edges(vec.into())` or `Payload::Edges(slice.into())`.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload<'a> {
    /// Nothing (costs 0; used for fire-and-forget control).
    Empty,
    /// One boolean.
    Bit(bool),
    /// A fixed-width bit string (value, width).
    Bits(u64, u32),
    /// An unbounded non-negative integer (binary length).
    Count(u64),
    /// An optional vertex id.
    Vertex(Option<VertexId>),
    /// A list of vertex ids.
    Vertices(Vec<VertexId>),
    /// An optional edge.
    Edge(Option<Edge>),
    /// A list of edges, owned or borrowed from the sender's partition.
    Edges(Cow<'a, [Edge]>),
    /// An optional triangle (three vertex ids).
    Triangle(Option<Triangle>),
    /// A probability, quantized to 32 bits (protocol parameters sent by
    /// the coordinator).
    Probability(f64),
}

impl<'a> Payload<'a> {
    /// Exact cost of the payload in a graph on `n` vertices.
    pub fn bit_len(&self, n: usize) -> BitCost {
        let v = bits_per_vertex(n);
        let e = bits_per_edge(n);
        let cost = match self {
            Payload::Empty => 0,
            Payload::Bit(_) => 1,
            Payload::Bits(_, width) => u64::from(*width),
            Payload::Count(x) => bits_for_count(*x),
            Payload::Vertex(o) => 1 + if o.is_some() { v } else { 0 },
            Payload::Vertices(vs) => bits_for_count(vs.len() as u64) + v * vs.len() as u64,
            Payload::Edge(o) => 1 + if o.is_some() { e } else { 0 },
            Payload::Edges(es) => bits_for_count(es.len() as u64) + e * es.len() as u64,
            Payload::Triangle(o) => 1 + if o.is_some() { 3 * v } else { 0 },
            Payload::Probability(_) => 32,
        };
        BitCost(cost)
    }

    /// The edges of an `Edges` payload.
    ///
    /// In debug builds, calling this on any other variant panics — a
    /// non-`Edges` payload at an edge-consuming call site is a protocol
    /// wiring bug that the old silent `&[]` fallback used to mask. Call
    /// sites that legitimately skip non-edge payloads (e.g.
    /// [`crate::simultaneous::SimMessage::edges`]) use
    /// [`Payload::try_as_edges`] instead.
    pub fn as_edges(&self) -> &[Edge] {
        debug_assert!(
            matches!(self, Payload::Edges(_)),
            "as_edges on a non-Edges payload ({self:?}); use try_as_edges \
             where other variants are expected"
        );
        self.try_as_edges().unwrap_or(&[])
    }

    /// The edges when this payload is [`Payload::Edges`], `None`
    /// otherwise.
    pub fn try_as_edges(&self) -> Option<&[Edge]> {
        match self {
            Payload::Edges(es) => Some(es),
            _ => None,
        }
    }

    /// Clones any borrowed edge list, detaching the payload from its
    /// sender's lifetime (needed to move payloads across threads).
    pub fn into_owned(self) -> Payload<'static> {
        match self {
            Payload::Empty => Payload::Empty,
            Payload::Bit(b) => Payload::Bit(b),
            Payload::Bits(v, w) => Payload::Bits(v, w),
            Payload::Count(c) => Payload::Count(c),
            Payload::Vertex(o) => Payload::Vertex(o),
            Payload::Vertices(vs) => Payload::Vertices(vs),
            Payload::Edge(o) => Payload::Edge(o),
            Payload::Edges(es) => Payload::Edges(Cow::Owned(es.into_owned())),
            Payload::Triangle(o) => Payload::Triangle(o),
            Payload::Probability(p) => Payload::Probability(p),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    #[test]
    fn scalar_costs() {
        let n = 1024; // 10 bits per vertex
        assert_eq!(Payload::Empty.bit_len(n), BitCost(0));
        assert_eq!(Payload::Bit(true).bit_len(n), BitCost(1));
        assert_eq!(Payload::Bits(0b101, 3).bit_len(n), BitCost(3));
        assert_eq!(Payload::Count(255).bit_len(n), BitCost(8));
        assert_eq!(Payload::Probability(0.5).bit_len(n), BitCost(32));
    }

    #[test]
    fn option_costs() {
        let n = 1024;
        assert_eq!(Payload::Vertex(None).bit_len(n), BitCost(1));
        assert_eq!(Payload::Vertex(Some(v(3))).bit_len(n), BitCost(11));
        assert_eq!(Payload::Edge(None).bit_len(n), BitCost(1));
        assert_eq!(
            Payload::Edge(Some(Edge::new(v(0), v(1)))).bit_len(n),
            BitCost(21)
        );
        assert_eq!(Payload::Triangle(None).bit_len(n), BitCost(1));
        assert_eq!(
            Payload::Triangle(Some(Triangle::new(v(0), v(1), v(2)))).bit_len(n),
            BitCost(31)
        );
    }

    #[test]
    fn vector_costs_scale_linearly() {
        let n = 1024;
        let es: Vec<Edge> = (0..10).map(|i| Edge::new(v(i), v(i + 1))).collect();
        // length prefix of 10 = 4 bits, plus 10 edges × 20 bits
        assert_eq!(
            Payload::Edges(es.clone().into()).bit_len(n),
            BitCost(4 + 200)
        );
        let vs: Vec<VertexId> = (0..3).map(v).collect();
        assert_eq!(Payload::Vertices(vs).bit_len(n), BitCost(2 + 30));
        assert_eq!(Payload::Edges(vec![].into()).bit_len(n), BitCost(1));
    }

    #[test]
    fn borrowed_and_owned_edges_cost_the_same() {
        let n = 1024;
        let es: Vec<Edge> = (0..7).map(|i| Edge::new(v(i), v(i + 1))).collect();
        let owned = Payload::Edges(es.clone().into());
        let borrowed = Payload::Edges(Cow::Borrowed(es.as_slice()));
        assert_eq!(owned.bit_len(n), borrowed.bit_len(n));
        assert_eq!(owned, borrowed, "content equality ignores ownership");
        assert_eq!(borrowed.into_owned(), owned);
    }

    #[test]
    fn as_edges_accessor() {
        let es = vec![Edge::new(v(0), v(1))];
        assert_eq!(Payload::Edges(es.clone().into()).as_edges(), es.as_slice());
        assert_eq!(
            Payload::Edges(es.clone().into()).try_as_edges(),
            Some(es.as_slice())
        );
        assert_eq!(Payload::Bit(false).try_as_edges(), None);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "as_edges on a non-Edges payload")]
    fn as_edges_rejects_other_variants_in_debug() {
        let _ = Payload::Bit(false).as_edges();
    }
}
