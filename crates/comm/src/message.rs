//! Message payloads and their exact bit lengths.

use crate::bits::{bits_for_count, bits_per_edge, bits_per_vertex, BitCost};
use triad_graph::{Edge, Triangle, VertexId};

/// The content of one message in either direction.
///
/// Each variant has an exact bit cost under the model of [`crate::bits`];
/// `Option` flags cost one bit, vectors carry a length prefix.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// Nothing (costs 0; used for fire-and-forget control).
    Empty,
    /// One boolean.
    Bit(bool),
    /// A fixed-width bit string (value, width).
    Bits(u64, u32),
    /// An unbounded non-negative integer (binary length).
    Count(u64),
    /// An optional vertex id.
    Vertex(Option<VertexId>),
    /// A list of vertex ids.
    Vertices(Vec<VertexId>),
    /// An optional edge.
    Edge(Option<Edge>),
    /// A list of edges.
    Edges(Vec<Edge>),
    /// An optional triangle (three vertex ids).
    Triangle(Option<Triangle>),
    /// A probability, quantized to 32 bits (protocol parameters sent by
    /// the coordinator).
    Probability(f64),
}

impl Payload {
    /// Exact cost of the payload in a graph on `n` vertices.
    pub fn bit_len(&self, n: usize) -> BitCost {
        let v = bits_per_vertex(n);
        let e = bits_per_edge(n);
        let cost = match self {
            Payload::Empty => 0,
            Payload::Bit(_) => 1,
            Payload::Bits(_, width) => u64::from(*width),
            Payload::Count(x) => bits_for_count(*x),
            Payload::Vertex(o) => 1 + if o.is_some() { v } else { 0 },
            Payload::Vertices(vs) => bits_for_count(vs.len() as u64) + v * vs.len() as u64,
            Payload::Edge(o) => 1 + if o.is_some() { e } else { 0 },
            Payload::Edges(es) => bits_for_count(es.len() as u64) + e * es.len() as u64,
            Payload::Triangle(o) => 1 + if o.is_some() { 3 * v } else { 0 },
            Payload::Probability(_) => 32,
        };
        BitCost(cost)
    }

    /// Convenience: the edges of an `Edges` payload, empty otherwise.
    pub fn as_edges(&self) -> &[Edge] {
        match self {
            Payload::Edges(es) => es,
            _ => &[],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    #[test]
    fn scalar_costs() {
        let n = 1024; // 10 bits per vertex
        assert_eq!(Payload::Empty.bit_len(n), BitCost(0));
        assert_eq!(Payload::Bit(true).bit_len(n), BitCost(1));
        assert_eq!(Payload::Bits(0b101, 3).bit_len(n), BitCost(3));
        assert_eq!(Payload::Count(255).bit_len(n), BitCost(8));
        assert_eq!(Payload::Probability(0.5).bit_len(n), BitCost(32));
    }

    #[test]
    fn option_costs() {
        let n = 1024;
        assert_eq!(Payload::Vertex(None).bit_len(n), BitCost(1));
        assert_eq!(Payload::Vertex(Some(v(3))).bit_len(n), BitCost(11));
        assert_eq!(Payload::Edge(None).bit_len(n), BitCost(1));
        assert_eq!(
            Payload::Edge(Some(Edge::new(v(0), v(1)))).bit_len(n),
            BitCost(21)
        );
        assert_eq!(Payload::Triangle(None).bit_len(n), BitCost(1));
        assert_eq!(
            Payload::Triangle(Some(Triangle::new(v(0), v(1), v(2)))).bit_len(n),
            BitCost(31)
        );
    }

    #[test]
    fn vector_costs_scale_linearly() {
        let n = 1024;
        let es: Vec<Edge> = (0..10).map(|i| Edge::new(v(i), v(i + 1))).collect();
        // length prefix of 10 = 4 bits, plus 10 edges × 20 bits
        assert_eq!(Payload::Edges(es.clone()).bit_len(n), BitCost(4 + 200));
        let vs: Vec<VertexId> = (0..3).map(v).collect();
        assert_eq!(Payload::Vertices(vs).bit_len(n), BitCost(2 + 30));
        assert_eq!(Payload::Edges(vec![]).bit_len(n), BitCost(1));
    }

    #[test]
    fn as_edges_accessor() {
        let es = vec![Edge::new(v(0), v(1))];
        assert_eq!(Payload::Edges(es.clone()).as_edges(), es.as_slice());
        assert!(Payload::Bit(false).as_edges().is_empty());
    }
}
