//! Transcript recording, aggregation and structured export.
//!
//! A [`Transcript`] is the ordered record of every message one protocol
//! run exchanged. Besides the raw [`Event`] log it offers:
//!
//! * rollups — [`by_phase`](Transcript::by_phase),
//!   [`by_player`](Transcript::by_player),
//!   [`by_round`](Transcript::by_round) and
//!   [`by_direction`](Transcript::by_direction), each a partition of the
//!   event log whose bit totals sum exactly to
//!   [`total_bits`](Transcript::total_bits),
//! * structured export — JSONL ([`write_jsonl`](Transcript::write_jsonl)),
//!   a JSON array ([`write_events_json`](Transcript::write_events_json)),
//!   CSV ([`write_events_csv`](Transcript::write_events_csv)) and both
//!   formats for the rollups,
//! * parsing — [`parse_events_json`] / [`parse_events_csv`] read the
//!   exported events back as [`OwnedEvent`]s, so external tooling (and
//!   the round-trip tests) never have to guess the schema.
//!
//! The JSON/CSV schema is documented in `docs/OBSERVABILITY.md`.

use crate::bits::BitCost;
use serde::Serialize;

/// The phase events carry when no explicit phase scope is active.
pub const DEFAULT_PHASE: &str = "unphased";

/// Direction of a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Direction {
    /// Coordinator → one player.
    ToPlayer,
    /// Player → coordinator.
    ToCoordinator,
    /// Coordinator → all players (cost model dependent).
    Broadcast,
}

impl Direction {
    /// The stable export name (`to_player`, `to_coordinator`, `broadcast`).
    pub fn as_str(self) -> &'static str {
        match self {
            Direction::ToPlayer => "to_player",
            Direction::ToCoordinator => "to_coordinator",
            Direction::Broadcast => "broadcast",
        }
    }

    /// Parses an export name written by [`Direction::as_str`].
    pub fn from_export_name(s: &str) -> Option<Direction> {
        match s {
            "to_player" => Some(Direction::ToPlayer),
            "to_coordinator" => Some(Direction::ToCoordinator),
            "broadcast" => Some(Direction::Broadcast),
            _ => None,
        }
    }
}

/// One recorded message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Event {
    /// Communication round index.
    pub round: u64,
    /// The player involved (`None` for broadcast bookkeeping).
    pub player: Option<usize>,
    /// Direction of the message.
    pub direction: Direction,
    /// Bits charged for this message.
    pub bits: u64,
    /// The protocol phase active when the message was recorded (see the
    /// phase-name registry in `docs/OBSERVABILITY.md`).
    pub phase: &'static str,
    /// A short message-kind label, for debugging and per-label breakdowns.
    pub label: &'static str,
}

/// The ordered record of every message exchanged in one protocol run.
///
/// # Example
///
/// ```
/// use triad_comm::{BitCost, Direction, Transcript};
///
/// let mut t = Transcript::new(2);
/// t.set_phase("sample");
/// t.record(Some(0), Direction::ToCoordinator, BitCost(10), "edges");
/// t.set_phase("verify");
/// t.record(Some(1), Direction::ToCoordinator, BitCost(5), "bit");
///
/// let phases = t.by_phase();
/// let total: u64 = phases.iter().map(|r| r.bits).sum();
/// assert_eq!(total, t.total_bits().get());
///
/// let mut json = Vec::new();
/// t.write_events_json(&mut json).unwrap();
/// let parsed = triad_comm::parse_events_json(std::str::from_utf8(&json).unwrap()).unwrap();
/// assert_eq!(parsed.len(), 2);
/// assert_eq!(parsed[0].phase, "sample");
/// ```
#[derive(Debug, Clone)]
pub struct Transcript {
    events: Vec<Event>,
    round: u64,
    total: BitCost,
    per_player_sent: Vec<u64>,
    current_phase: &'static str,
}

impl Default for Transcript {
    fn default() -> Self {
        Transcript::new(0)
    }
}

impl Transcript {
    /// An empty transcript for `k` players.
    pub fn new(k: usize) -> Self {
        Transcript {
            events: Vec::new(),
            round: 0,
            total: BitCost::ZERO,
            per_player_sent: vec![0; k],
            current_phase: DEFAULT_PHASE,
        }
    }

    /// Pre-reserves space for `additional` further events — callers that
    /// keep full transcripts on a hot path (e.g. the simultaneous
    /// runner) size the log once instead of growing it per record.
    pub fn reserve_events(&mut self, additional: usize) {
        self.events.reserve(additional);
    }

    /// Advances to the next communication round.
    pub fn next_round(&mut self) {
        self.round += 1;
    }

    /// Current round index.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Sets the phase stamped onto subsequently recorded events.
    pub fn set_phase(&mut self, phase: &'static str) {
        self.current_phase = phase;
    }

    /// The phase currently being stamped onto recorded events.
    pub fn current_phase(&self) -> &'static str {
        self.current_phase
    }

    /// Records a message under the current phase.
    pub fn record(
        &mut self,
        player: Option<usize>,
        direction: Direction,
        bits: BitCost,
        label: &'static str,
    ) {
        if direction == Direction::ToCoordinator {
            if let Some(j) = player {
                if let Some(slot) = self.per_player_sent.get_mut(j) {
                    *slot += bits.get();
                }
            }
        }
        self.total.accumulate(bits);
        self.events.push(Event {
            round: self.round,
            player,
            direction,
            bits: bits.get(),
            phase: self.current_phase,
            label,
        });
    }

    /// Appends another transcript as later rounds of this one — the
    /// accounting behind repetition wrappers: totals add, rounds
    /// concatenate, per-player counters accumulate.
    ///
    /// Absorbing a pristine transcript (no events, round 0) is a no-op,
    /// which makes `absorb` associative — the invariant the deterministic
    /// parallel engine's ordered reduction relies on (see
    /// `tests/properties.rs`).
    pub fn absorb(&mut self, other: &Transcript) {
        if other.events.is_empty() && other.round == 0 {
            // A pristine operand carries no rounds; bumping our round
            // counter for it would make `absorb` non-associative.
            if self.per_player_sent.len() < other.per_player_sent.len() {
                self.per_player_sent.resize(other.per_player_sent.len(), 0);
            }
            return;
        }
        let offset = if self.events.is_empty() && self.round == 0 {
            0
        } else {
            self.round + 1
        };
        self.events.reserve(other.events.len());
        for e in &other.events {
            self.events.push(Event {
                round: e.round + offset,
                ..*e
            });
        }
        self.round = offset + other.round;
        self.total.accumulate(other.total);
        if self.per_player_sent.len() < other.per_player_sent.len() {
            self.per_player_sent.resize(other.per_player_sent.len(), 0);
        }
        for (slot, sent) in self.per_player_sent.iter_mut().zip(&other.per_player_sent) {
            *slot += sent;
        }
    }

    /// All recorded events in order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Total bits across all messages.
    pub fn total_bits(&self) -> BitCost {
        self.total
    }

    /// Bits each player sent to the coordinator.
    pub fn per_player_sent(&self) -> &[u64] {
        &self.per_player_sent
    }

    /// Aggregated statistics.
    pub fn stats(&self) -> CommStats {
        CommStats {
            total_bits: self.total.get(),
            rounds: self.round + 1,
            messages: self.events.len() as u64,
            max_player_sent_bits: self.per_player_sent.iter().copied().max().unwrap_or(0),
        }
    }

    /// Total bits charged to events carrying the given label.
    pub fn bits_for_label(&self, label: &str) -> u64 {
        self.events
            .iter()
            .filter(|e| e.label == label)
            .map(|e| e.bits)
            .sum()
    }

    /// Total bits charged to events recorded under the given phase.
    pub fn bits_for_phase(&self, phase: &str) -> u64 {
        self.events
            .iter()
            .filter(|e| e.phase == phase)
            .map(|e| e.bits)
            .sum()
    }

    /// Per-label totals, sorted by descending bits — the per-label cost
    /// breakdown of a run.
    pub fn breakdown(&self) -> Vec<LabelTotals> {
        let mut map: std::collections::HashMap<&'static str, LabelTotals> =
            std::collections::HashMap::new();
        for e in &self.events {
            let slot = map.entry(e.label).or_insert(LabelTotals {
                label: e.label,
                bits: 0,
                messages: 0,
            });
            slot.bits += e.bits;
            slot.messages += 1;
        }
        let mut out: Vec<LabelTotals> = map.into_values().collect();
        out.sort_by(|a, b| b.bits.cmp(&a.bits).then(a.label.cmp(b.label)));
        out
    }

    fn rollup_by<K: Ord, F>(&self, key_of: F) -> Vec<(K, Rollup)>
    where
        F: Fn(&Event) -> (K, String),
    {
        let mut map: std::collections::BTreeMap<K, Rollup> = std::collections::BTreeMap::new();
        for e in &self.events {
            let (sort_key, key) = key_of(e);
            let slot = map.entry(sort_key).or_insert(Rollup {
                key,
                bits: 0,
                messages: 0,
            });
            slot.bits += e.bits;
            slot.messages += 1;
        }
        map.into_iter().collect()
    }

    /// Bits and messages per phase, sorted by descending bits. Every
    /// event carries exactly one phase, so the rollup's bit totals sum
    /// to [`total_bits`](Self::total_bits).
    pub fn by_phase(&self) -> Vec<Rollup> {
        let mut out: Vec<Rollup> = self
            .rollup_by(|e| (e.phase, e.phase.to_string()))
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        out.sort_by(|a, b| b.bits.cmp(&a.bits).then(a.key.cmp(&b.key)));
        out
    }

    /// Bits and messages per involved party: `player-j` in index order,
    /// then `broadcast` for coordinator postings charged to nobody. A
    /// partition of the events, so bit totals sum to
    /// [`total_bits`](Self::total_bits).
    pub fn by_player(&self) -> Vec<Rollup> {
        self.rollup_by(|e| match e.player {
            Some(j) => ((0, j), format!("player-{j}")),
            None => ((1, 0), "broadcast".to_string()),
        })
        .into_iter()
        .map(|(_, r)| r)
        .collect()
    }

    /// Bits and messages per round, in round order. Bit totals sum to
    /// [`total_bits`](Self::total_bits).
    pub fn by_round(&self) -> Vec<Rollup> {
        self.rollup_by(|e| (e.round, format!("round-{}", e.round)))
            .into_iter()
            .map(|(_, r)| r)
            .collect()
    }

    /// Bits and messages per [`Direction`], in declaration order. Bit
    /// totals sum to [`total_bits`](Self::total_bits).
    pub fn by_direction(&self) -> Vec<Rollup> {
        self.rollup_by(|e| (e.direction as u8, e.direction.as_str().to_string()))
            .into_iter()
            .map(|(_, r)| r)
            .collect()
    }

    fn event_json(e: &Event) -> String {
        let player = match e.player {
            Some(p) => p.to_string(),
            None => "null".to_string(),
        };
        format!(
            "{{\"round\":{},\"player\":{},\"direction\":\"{}\",\"bits\":{},\
             \"phase\":\"{}\",\"label\":\"{}\"}}",
            e.round,
            player,
            e.direction.as_str(),
            e.bits,
            e.phase,
            e.label
        )
    }

    /// Serializes every event as one JSON object per line (JSONL) — the
    /// interchange format for external transcript analysis.
    ///
    /// # Errors
    ///
    /// Propagates writer failures.
    pub fn write_jsonl<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        for e in &self.events {
            writeln!(w, "{}", Self::event_json(e))?;
        }
        Ok(())
    }

    /// Serializes the event log as one JSON array. Readable back with
    /// [`parse_events_json`].
    ///
    /// # Errors
    ///
    /// Propagates writer failures.
    pub fn write_events_json<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(w, "[")?;
        for (i, e) in self.events.iter().enumerate() {
            let sep = if i + 1 < self.events.len() { "," } else { "" };
            writeln!(w, "  {}{}", Self::event_json(e), sep)?;
        }
        writeln!(w, "]")
    }

    /// Serializes the event log as CSV with header
    /// `round,player,direction,bits,phase,label` (empty `player` for
    /// broadcast events). Readable back with [`parse_events_csv`].
    ///
    /// # Errors
    ///
    /// Propagates writer failures.
    pub fn write_events_csv<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(w, "round,player,direction,bits,phase,label")?;
        for e in &self.events {
            let player = match e.player {
                Some(p) => p.to_string(),
                None => String::new(),
            };
            writeln!(
                w,
                "{},{},{},{},{},{}",
                e.round,
                player,
                e.direction.as_str(),
                e.bits,
                e.phase,
                e.label
            )?;
        }
        Ok(())
    }

    /// Serializes all four rollups plus the grand total as one JSON
    /// object: `{"total_bits": …, "by_phase": […], "by_player": […],
    /// "by_round": […], "by_direction": […]}`.
    ///
    /// # Errors
    ///
    /// Propagates writer failures.
    pub fn write_rollups_json<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(w, "{{")?;
        writeln!(w, "  \"total_bits\": {},", self.total.get())?;
        let groups = [
            ("by_phase", self.by_phase()),
            ("by_player", self.by_player()),
            ("by_round", self.by_round()),
            ("by_direction", self.by_direction()),
        ];
        for (i, (name, rows)) in groups.iter().enumerate() {
            let sep = if i + 1 < groups.len() { "," } else { "" };
            writeln!(
                w,
                "  \"{}\": {}{}",
                name,
                rollup_array_json(rows, "  "),
                sep
            )?;
        }
        writeln!(w, "}}")
    }

    /// Serializes all four rollups as CSV with header
    /// `grouping,key,bits,messages`.
    ///
    /// # Errors
    ///
    /// Propagates writer failures.
    pub fn write_rollups_csv<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(w, "grouping,key,bits,messages")?;
        let groups = [
            ("by_phase", self.by_phase()),
            ("by_player", self.by_player()),
            ("by_round", self.by_round()),
            ("by_direction", self.by_direction()),
        ];
        for (name, rows) in &groups {
            for r in rows {
                writeln!(w, "{},{},{},{}", name, r.key, r.bits, r.messages)?;
            }
        }
        Ok(())
    }
}

/// Renders a rollup slice as a JSON array (used by the transcript and the
/// report writers; `indent` prefixes each element line).
pub(crate) fn rollup_array_json(rows: &[Rollup], indent: &str) -> String {
    if rows.is_empty() {
        return "[]".to_string();
    }
    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{indent}  {{\"key\":\"{}\",\"bits\":{},\"messages\":{}}}",
                r.key, r.bits, r.messages
            )
        })
        .collect();
    format!("[\n{}\n{indent}]", body.join(",\n"))
}

/// One row of a transcript rollup: an aggregation key with its totals.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Rollup {
    /// The aggregation key (a phase name, `player-j`, `round-i`, or a
    /// direction name).
    pub key: String,
    /// Total bits across the group's events.
    pub bits: u64,
    /// Number of events in the group.
    pub messages: u64,
}

/// Aggregate totals for one transcript label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct LabelTotals {
    /// The message-kind label.
    pub label: &'static str,
    /// Total bits across the label's events.
    pub bits: u64,
    /// Number of events.
    pub messages: u64,
}

/// Summary statistics of one protocol run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub struct CommStats {
    /// Total bits exchanged (the paper's `CC(Π)` sample).
    pub total_bits: u64,
    /// Number of communication rounds used.
    pub rounds: u64,
    /// Number of messages exchanged.
    pub messages: u64,
    /// The largest number of bits any single player sent — the quantity
    /// capped by the simultaneous protocols' per-player budgets.
    pub max_player_sent_bits: u64,
}

impl CommStats {
    /// Merges two runs (summing totals, taking max of maxima).
    pub fn merged(self, other: CommStats) -> CommStats {
        CommStats {
            total_bits: self.total_bits + other.total_bits,
            rounds: self.rounds.max(other.rounds),
            messages: self.messages + other.messages,
            max_player_sent_bits: self.max_player_sent_bits.max(other.max_player_sent_bits),
        }
    }
}

/// An [`Event`] read back from an export, with owned strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OwnedEvent {
    /// Communication round index.
    pub round: u64,
    /// The player involved (`None` for broadcast bookkeeping).
    pub player: Option<usize>,
    /// Direction of the message.
    pub direction: Direction,
    /// Bits charged for this message.
    pub bits: u64,
    /// The protocol phase the message was recorded under.
    pub phase: String,
    /// The message-kind label.
    pub label: String,
}

/// Failure to parse an exported transcript.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong, with enough context to locate the input.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "transcript parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

fn parse_err(message: impl Into<String>) -> ParseError {
    ParseError {
        message: message.into(),
    }
}

/// Parses one flat JSON object (no nesting, no string escapes — the
/// grammar the event writers emit) into key/value pairs; string values
/// are returned unquoted.
fn parse_flat_object(obj: &str) -> Result<Vec<(String, String)>, ParseError> {
    let inner = obj
        .trim()
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| parse_err(format!("expected an object, got `{obj}`")))?;
    let mut pairs = Vec::new();
    for field in inner.split(',') {
        let field = field.trim();
        if field.is_empty() {
            continue;
        }
        let (key, value) = field
            .split_once(':')
            .ok_or_else(|| parse_err(format!("expected `key:value`, got `{field}`")))?;
        let key = key.trim().trim_matches('"').to_string();
        let value = value.trim();
        if value.contains('\\') {
            return Err(parse_err(format!(
                "escape sequences unsupported in `{value}`"
            )));
        }
        pairs.push((key, value.trim_matches('"').to_string()));
    }
    Ok(pairs)
}

fn event_from_pairs(pairs: &[(String, String)]) -> Result<OwnedEvent, ParseError> {
    let get = |key: &str| -> Result<&str, ParseError> {
        pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .ok_or_else(|| parse_err(format!("missing field `{key}`")))
    };
    let round = get("round")?
        .parse()
        .map_err(|_| parse_err("round is not an integer"))?;
    let player = match get("player")? {
        "" | "null" => None,
        p => Some(p.parse().map_err(|_| parse_err("player is not an index"))?),
    };
    let direction_name = get("direction")?;
    let direction = Direction::from_export_name(direction_name)
        .ok_or_else(|| parse_err(format!("unknown direction `{direction_name}`")))?;
    let bits = get("bits")?
        .parse()
        .map_err(|_| parse_err("bits is not an integer"))?;
    Ok(OwnedEvent {
        round,
        player,
        direction,
        bits,
        phase: get("phase")?.to_string(),
        label: get("label")?.to_string(),
    })
}

/// Parses the output of [`Transcript::write_events_json`] (also accepts
/// the JSONL form of [`Transcript::write_jsonl`]).
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input or missing fields.
pub fn parse_events_json(text: &str) -> Result<Vec<OwnedEvent>, ParseError> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        if line.is_empty() || line == "[" || line == "]" {
            continue;
        }
        out.push(event_from_pairs(&parse_flat_object(line)?)?);
    }
    Ok(out)
}

/// Parses the output of [`Transcript::write_events_csv`].
///
/// # Errors
///
/// Returns [`ParseError`] on a bad header, wrong column count, or
/// malformed cells.
pub fn parse_events_csv(text: &str) -> Result<Vec<OwnedEvent>, ParseError> {
    let mut lines = text.lines();
    let header = lines.next().ok_or_else(|| parse_err("empty input"))?;
    let columns: Vec<&str> = header.trim().split(',').collect();
    if columns != ["round", "player", "direction", "bits", "phase", "label"] {
        return Err(parse_err(format!("unexpected header `{header}`")));
    }
    let mut out = Vec::new();
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() != columns.len() {
            return Err(parse_err(format!(
                "expected {} cells in `{line}`",
                columns.len()
            )));
        }
        let pairs: Vec<(String, String)> = columns
            .iter()
            .zip(&cells)
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        out.push(event_from_pairs(&pairs)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_totals_and_per_player() {
        let mut t = Transcript::new(3);
        t.record(Some(0), Direction::ToCoordinator, BitCost(10), "a");
        t.record(Some(0), Direction::ToPlayer, BitCost(5), "a");
        t.next_round();
        t.record(Some(2), Direction::ToCoordinator, BitCost(7), "b");
        assert_eq!(t.total_bits(), BitCost(22));
        assert_eq!(t.per_player_sent(), &[10, 0, 7]);
        let s = t.stats();
        assert_eq!(s.total_bits, 22);
        assert_eq!(s.rounds, 2);
        assert_eq!(s.messages, 3);
        assert_eq!(s.max_player_sent_bits, 10);
        assert_eq!(t.bits_for_label("a"), 15);
        assert_eq!(t.bits_for_label("b"), 7);
        assert_eq!(t.events().len(), 3);
    }

    #[test]
    fn broadcast_counts_toward_total_only() {
        let mut t = Transcript::new(2);
        t.record(None, Direction::Broadcast, BitCost(100), "bc");
        assert_eq!(t.total_bits(), BitCost(100));
        assert_eq!(t.per_player_sent(), &[0, 0]);
    }

    #[test]
    fn breakdown_aggregates_and_sorts() {
        let mut t = Transcript::new(2);
        t.record(Some(0), Direction::ToCoordinator, BitCost(5), "small");
        t.record(Some(1), Direction::ToCoordinator, BitCost(30), "big");
        t.record(Some(0), Direction::ToPlayer, BitCost(10), "big");
        let b = t.breakdown();
        assert_eq!(b.len(), 2);
        assert_eq!(b[0].label, "big");
        assert_eq!(b[0].bits, 40);
        assert_eq!(b[0].messages, 2);
        assert_eq!(b[1].label, "small");
    }

    #[test]
    fn merged_stats() {
        let a = CommStats {
            total_bits: 10,
            rounds: 2,
            messages: 3,
            max_player_sent_bits: 6,
        };
        let b = CommStats {
            total_bits: 5,
            rounds: 4,
            messages: 1,
            max_player_sent_bits: 2,
        };
        let m = a.merged(b);
        assert_eq!(m.total_bits, 15);
        assert_eq!(m.rounds, 4);
        assert_eq!(m.messages, 4);
        assert_eq!(m.max_player_sent_bits, 6);
    }

    fn phased_transcript() -> Transcript {
        let mut t = Transcript::new(3);
        t.set_phase("sample");
        t.record(Some(0), Direction::ToPlayer, BitCost(4), "req");
        t.record(Some(0), Direction::ToCoordinator, BitCost(9), "resp");
        t.next_round();
        t.set_phase("verify");
        t.record(Some(2), Direction::ToCoordinator, BitCost(6), "resp");
        t.record(None, Direction::Broadcast, BitCost(11), "post");
        t
    }

    #[test]
    fn phases_default_and_scope() {
        let mut t = Transcript::new(1);
        t.record(Some(0), Direction::ToPlayer, BitCost(1), "x");
        assert_eq!(t.events()[0].phase, DEFAULT_PHASE);
        t.set_phase("p");
        assert_eq!(t.current_phase(), "p");
        t.record(Some(0), Direction::ToPlayer, BitCost(1), "x");
        assert_eq!(t.events()[1].phase, "p");
    }

    #[test]
    fn every_rollup_partitions_the_total() {
        let t = phased_transcript();
        let total = t.total_bits().get();
        for rollup in [t.by_phase(), t.by_player(), t.by_round(), t.by_direction()] {
            assert_eq!(rollup.iter().map(|r| r.bits).sum::<u64>(), total);
            assert_eq!(
                rollup.iter().map(|r| r.messages).sum::<u64>(),
                t.events().len() as u64
            );
        }
    }

    #[test]
    fn rollup_keys_and_order() {
        let t = phased_transcript();
        let phases: Vec<String> = t.by_phase().into_iter().map(|r| r.key).collect();
        assert_eq!(phases, ["verify", "sample"], "descending bits");
        let players: Vec<String> = t.by_player().into_iter().map(|r| r.key).collect();
        assert_eq!(players, ["player-0", "player-2", "broadcast"]);
        let rounds: Vec<String> = t.by_round().into_iter().map(|r| r.key).collect();
        assert_eq!(rounds, ["round-0", "round-1"]);
        let dirs: Vec<String> = t.by_direction().into_iter().map(|r| r.key).collect();
        assert_eq!(dirs, ["to_player", "to_coordinator", "broadcast"]);
        assert_eq!(t.bits_for_phase("sample"), 13);
        assert_eq!(t.bits_for_phase("verify"), 17);
    }

    #[test]
    fn jsonl_export_is_line_per_event() {
        let mut t = Transcript::new(1);
        t.record(Some(0), Direction::ToPlayer, BitCost(7), "x");
        t.record(None, Direction::Broadcast, BitCost(3), "y");
        let mut buf = Vec::new();
        t.write_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.trim().lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"bits\":7"));
        assert!(lines[0].contains("\"direction\":\"to_player\""));
        assert!(lines[0].contains("\"phase\":\"unphased\""));
        assert!(lines[1].contains("\"player\":null"));
    }

    #[test]
    fn json_round_trip() {
        let t = phased_transcript();
        let mut buf = Vec::new();
        t.write_events_json(&mut buf).unwrap();
        let parsed = parse_events_json(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert_eq!(parsed.len(), t.events().len());
        for (p, e) in parsed.iter().zip(t.events()) {
            assert_eq!(p.round, e.round);
            assert_eq!(p.player, e.player);
            assert_eq!(p.direction, e.direction);
            assert_eq!(p.bits, e.bits);
            assert_eq!(p.phase, e.phase);
            assert_eq!(p.label, e.label);
        }
    }

    #[test]
    fn csv_round_trip_matches_json() {
        let t = phased_transcript();
        let mut json = Vec::new();
        t.write_events_json(&mut json).unwrap();
        let mut csv = Vec::new();
        t.write_events_csv(&mut csv).unwrap();
        let from_json = parse_events_json(std::str::from_utf8(&json).unwrap()).unwrap();
        let from_csv = parse_events_csv(std::str::from_utf8(&csv).unwrap()).unwrap();
        assert_eq!(from_json, from_csv);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(parse_events_json("not json").is_err());
        assert!(
            parse_events_json("{\"round\":1}").is_err(),
            "missing fields"
        );
        assert!(parse_events_csv("wrong,header\n").is_err());
        assert!(parse_events_csv("round,player,direction,bits,phase,label\n1,2\n").is_err());
        assert!(
            parse_events_csv("round,player,direction,bits,phase,label\n0,0,sideways,1,p,l\n")
                .is_err()
        );
    }

    #[test]
    fn rollup_exports_include_all_groupings() {
        let t = phased_transcript();
        let mut json = Vec::new();
        t.write_rollups_json(&mut json).unwrap();
        let text = String::from_utf8(json).unwrap();
        for needle in [
            "total_bits",
            "by_phase",
            "by_player",
            "by_round",
            "by_direction",
        ] {
            assert!(text.contains(needle), "missing {needle} in {text}");
        }
        let mut csv = Vec::new();
        t.write_rollups_csv(&mut csv).unwrap();
        let text = String::from_utf8(csv).unwrap();
        assert!(text.starts_with("grouping,key,bits,messages\n"));
        assert!(text.contains("by_phase,verify,17,2"), "{text}");
        assert!(text.contains("by_player,broadcast,11,1"), "{text}");
    }

    #[test]
    fn absorb_concatenates_rounds_and_totals() {
        let mut a = phased_transcript();
        let b = phased_transcript();
        let total = a.total_bits() + b.total_bits();
        a.absorb(&b);
        assert_eq!(a.total_bits(), total);
        assert_eq!(a.round(), 3, "rounds 0..=1 then 2..=3");
        assert_eq!(a.events().len(), 8);
        assert_eq!(
            a.events()[4].round,
            2,
            "absorbed events start a fresh round"
        );
        assert_eq!(a.per_player_sent(), &[18, 0, 12]);
        let mut empty = Transcript::new(3);
        empty.absorb(&b);
        assert_eq!(
            empty.round(),
            1,
            "absorbing into empty keeps round numbering"
        );
        assert_eq!(empty.total_bits(), b.total_bits());
    }

    #[test]
    fn absorbing_a_pristine_transcript_is_a_no_op() {
        let mut a = phased_transcript();
        let before_round = a.round();
        let before_events = a.events().len();
        let before_total = a.total_bits();
        a.absorb(&Transcript::new(3));
        assert_eq!(a.round(), before_round, "no phantom round added");
        assert_eq!(a.events().len(), before_events);
        assert_eq!(a.total_bits(), before_total);
        // Associativity witness: (a ⊕ empty) ⊕ b == a ⊕ (empty ⊕ b).
        let b = phased_transcript();
        let mut left = phased_transcript();
        left.absorb(&Transcript::new(3));
        left.absorb(&b);
        let mut mid = Transcript::new(3);
        mid.absorb(&b);
        let mut right = phased_transcript();
        right.absorb(&mid);
        assert_eq!(left.round(), right.round());
        assert_eq!(left.events(), right.events());
        assert_eq!(left.per_player_sent(), right.per_player_sent());
    }
}
