//! Transcript recording and communication statistics.

use crate::bits::BitCost;
use serde::Serialize;

/// Direction of a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Direction {
    /// Coordinator → one player.
    ToPlayer,
    /// Player → coordinator.
    ToCoordinator,
    /// Coordinator → all players (cost model dependent).
    Broadcast,
}

/// One recorded message.
#[derive(Debug, Clone, Serialize)]
pub struct Event {
    /// Communication round index.
    pub round: u64,
    /// The player involved (`None` for broadcast bookkeeping).
    pub player: Option<usize>,
    /// Direction of the message.
    pub direction: Direction,
    /// Bits charged for this message.
    pub bits: u64,
    /// A short protocol-phase label, for debugging and per-phase breakdowns.
    pub label: &'static str,
}

/// The ordered record of every message exchanged in one protocol run.
#[derive(Debug, Clone, Default)]
pub struct Transcript {
    events: Vec<Event>,
    round: u64,
    total: BitCost,
    per_player_sent: Vec<u64>,
}

impl Transcript {
    /// An empty transcript for `k` players.
    pub fn new(k: usize) -> Self {
        Transcript {
            events: Vec::new(),
            round: 0,
            total: BitCost::ZERO,
            per_player_sent: vec![0; k],
        }
    }

    /// Advances to the next communication round.
    pub fn next_round(&mut self) {
        self.round += 1;
    }

    /// Current round index.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Records a message.
    pub fn record(
        &mut self,
        player: Option<usize>,
        direction: Direction,
        bits: BitCost,
        label: &'static str,
    ) {
        if direction == Direction::ToCoordinator {
            if let Some(j) = player {
                if let Some(slot) = self.per_player_sent.get_mut(j) {
                    *slot += bits.get();
                }
            }
        }
        self.total += bits;
        self.events.push(Event { round: self.round, player, direction, bits: bits.get(), label });
    }

    /// All recorded events in order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Total bits across all messages.
    pub fn total_bits(&self) -> BitCost {
        self.total
    }

    /// Bits each player sent to the coordinator.
    pub fn per_player_sent(&self) -> &[u64] {
        &self.per_player_sent
    }

    /// Aggregated statistics.
    pub fn stats(&self) -> CommStats {
        CommStats {
            total_bits: self.total.get(),
            rounds: self.round + 1,
            messages: self.events.len() as u64,
            max_player_sent_bits: self.per_player_sent.iter().copied().max().unwrap_or(0),
        }
    }

    /// Total bits charged to events carrying the given label.
    pub fn bits_for_label(&self, label: &str) -> u64 {
        self.events.iter().filter(|e| e.label == label).map(|e| e.bits).sum()
    }

    /// Per-label totals, sorted by descending bits — the per-phase cost
    /// breakdown of a run.
    pub fn breakdown(&self) -> Vec<LabelTotals> {
        let mut map: std::collections::HashMap<&'static str, LabelTotals> =
            std::collections::HashMap::new();
        for e in &self.events {
            let slot = map
                .entry(e.label)
                .or_insert(LabelTotals { label: e.label, bits: 0, messages: 0 });
            slot.bits += e.bits;
            slot.messages += 1;
        }
        let mut out: Vec<LabelTotals> = map.into_values().collect();
        out.sort_by(|a, b| b.bits.cmp(&a.bits).then(a.label.cmp(b.label)));
        out
    }

    /// Serializes every event as one JSON object per line (JSONL) — the
    /// interchange format for external transcript analysis.
    ///
    /// # Errors
    ///
    /// Propagates writer failures.
    pub fn write_jsonl<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        for e in &self.events {
            let player = match e.player {
                Some(p) => p.to_string(),
                None => "null".to_string(),
            };
            let direction = match e.direction {
                Direction::ToPlayer => "to_player",
                Direction::ToCoordinator => "to_coordinator",
                Direction::Broadcast => "broadcast",
            };
            writeln!(
                w,
                "{{\"round\":{},\"player\":{},\"direction\":\"{}\",\"bits\":{},\"label\":\"{}\"}}",
                e.round, player, direction, e.bits, e.label
            )?;
        }
        Ok(())
    }
}

/// Aggregate totals for one transcript label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct LabelTotals {
    /// The protocol-phase label.
    pub label: &'static str,
    /// Total bits across the label's events.
    pub bits: u64,
    /// Number of events.
    pub messages: u64,
}

/// Summary statistics of one protocol run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub struct CommStats {
    /// Total bits exchanged (the paper's `CC(Π)` sample).
    pub total_bits: u64,
    /// Number of communication rounds used.
    pub rounds: u64,
    /// Number of messages exchanged.
    pub messages: u64,
    /// The largest number of bits any single player sent — the quantity
    /// capped by the simultaneous protocols' per-player budgets.
    pub max_player_sent_bits: u64,
}

impl CommStats {
    /// Merges two runs (summing totals, taking max of maxima).
    pub fn merged(self, other: CommStats) -> CommStats {
        CommStats {
            total_bits: self.total_bits + other.total_bits,
            rounds: self.rounds.max(other.rounds),
            messages: self.messages + other.messages,
            max_player_sent_bits: self.max_player_sent_bits.max(other.max_player_sent_bits),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_totals_and_per_player() {
        let mut t = Transcript::new(3);
        t.record(Some(0), Direction::ToCoordinator, BitCost(10), "a");
        t.record(Some(0), Direction::ToPlayer, BitCost(5), "a");
        t.next_round();
        t.record(Some(2), Direction::ToCoordinator, BitCost(7), "b");
        assert_eq!(t.total_bits(), BitCost(22));
        assert_eq!(t.per_player_sent(), &[10, 0, 7]);
        let s = t.stats();
        assert_eq!(s.total_bits, 22);
        assert_eq!(s.rounds, 2);
        assert_eq!(s.messages, 3);
        assert_eq!(s.max_player_sent_bits, 10);
        assert_eq!(t.bits_for_label("a"), 15);
        assert_eq!(t.bits_for_label("b"), 7);
        assert_eq!(t.events().len(), 3);
    }

    #[test]
    fn broadcast_counts_toward_total_only() {
        let mut t = Transcript::new(2);
        t.record(None, Direction::Broadcast, BitCost(100), "bc");
        assert_eq!(t.total_bits(), BitCost(100));
        assert_eq!(t.per_player_sent(), &[0, 0]);
    }

    #[test]
    fn breakdown_aggregates_and_sorts() {
        let mut t = Transcript::new(2);
        t.record(Some(0), Direction::ToCoordinator, BitCost(5), "small");
        t.record(Some(1), Direction::ToCoordinator, BitCost(30), "big");
        t.record(Some(0), Direction::ToPlayer, BitCost(10), "big");
        let b = t.breakdown();
        assert_eq!(b.len(), 2);
        assert_eq!(b[0].label, "big");
        assert_eq!(b[0].bits, 40);
        assert_eq!(b[0].messages, 2);
        assert_eq!(b[1].label, "small");
    }

    #[test]
    fn jsonl_export_is_line_per_event() {
        let mut t = Transcript::new(1);
        t.record(Some(0), Direction::ToPlayer, BitCost(7), "x");
        t.record(None, Direction::Broadcast, BitCost(3), "y");
        let mut buf = Vec::new();
        t.write_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.trim().lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"bits\":7"));
        assert!(lines[0].contains("\"direction\":\"to_player\""));
        assert!(lines[1].contains("\"player\":null"));
    }

    #[test]
    fn merged_stats() {
        let a = CommStats { total_bits: 10, rounds: 2, messages: 3, max_player_sent_bits: 6 };
        let b = CommStats { total_bits: 5, rounds: 4, messages: 1, max_player_sent_bits: 2 };
        let m = a.merged(b);
        assert_eq!(m.total_bits, 15);
        assert_eq!(m.rounds, 4);
        assert_eq!(m.messages, 4);
        assert_eq!(m.max_player_sent_bits, 6);
    }
}
