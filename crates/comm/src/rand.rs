//! Shared (public) randomness.
//!
//! The paper assumes the players and the coordinator share a public random
//! string; agreeing on a sample or a random permutation therefore costs no
//! communication. We realize the shared string as a keyed pseudorandom
//! function over `(seed, tag, item)`: every party evaluates the same
//! function locally, so sampled sets and permutation ranks are consistent
//! across players, threads and runtimes without exchanging a single bit.
//!
//! Tags namespace independent uses (one tag per sampling round, permutation
//! draw, etc.); protocols derive fresh tags from a counter.

use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use triad_graph::{Edge, VertexId};

/// The public random string, realized as a PRF keyed by `seed`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedRandomness {
    seed: u64,
}

/// SplitMix64 finalizer — a fast, well-mixed 64-bit permutation. Used as
/// the PRF core here and as the seed-derivation mix for amplification
/// repetitions (`triad-protocols::amplify`): unlike affine schemes such
/// as `base + r·c`, nearby `(base, r)` pairs never collide into the same
/// stream.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

use mix64 as mix;

impl SharedRandomness {
    /// Shared randomness derived from a public seed.
    pub fn new(seed: u64) -> Self {
        SharedRandomness { seed }
    }

    /// The seed (public by definition).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// PRF evaluation on `(tag, item)`.
    #[inline]
    pub fn value(&self, tag: u64, item: u64) -> u64 {
        mix(mix(self.seed ^ mix(tag)) ^ item)
    }

    /// A uniform `f64` in `[0, 1)` for `(tag, item)`.
    #[inline]
    pub fn unit(&self, tag: u64, item: u64) -> f64 {
        // 53 top bits → uniform double in [0,1).
        (self.value(tag, item) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli(`p`) coin for `(tag, item)` — the idiom for "sample each
    /// element into a public set `S` independently with probability `p`".
    #[inline]
    pub fn coin(&self, tag: u64, item: u64, p: f64) -> bool {
        self.unit(tag, item) < p
    }

    /// Whether vertex `v` belongs to the public set drawn under `tag` with
    /// per-vertex probability `p`.
    #[inline]
    pub fn vertex_sampled(&self, tag: u64, v: VertexId, p: f64) -> bool {
        self.coin(tag, u64::from(v.0), p)
    }

    /// The rank of a vertex under the public random permutation `tag`.
    ///
    /// The permutation is the ordering of all vertices by
    /// `(rank_key, id)`; with 64-bit keys, ties are broken by id and the
    /// ordering is uniform. "The first vertex of a set with respect to π"
    /// is the set element minimizing this key.
    #[inline]
    pub fn vertex_rank(&self, tag: u64, v: VertexId) -> (u64, u32) {
        (self.value(tag, u64::from(v.0)), v.0)
    }

    /// Whether edge `e` belongs to the public *edge* set drawn under
    /// `tag` with per-pair probability `p` (used by the global
    /// distinct-edges estimator).
    #[inline]
    pub fn edge_sampled(&self, tag: u64, e: Edge, p: f64) -> bool {
        self.coin(tag, (u64::from(e.u().0) << 32) | u64::from(e.v().0), p)
    }

    /// The rank of an edge under the public random permutation `tag`
    /// (over the `n²` potential edges, as the paper's random-edge
    /// primitive requires).
    #[inline]
    pub fn edge_rank(&self, tag: u64, e: Edge) -> (u64, u32, u32) {
        let key = self.value(tag, (u64::from(e.u().0) << 32) | u64::from(e.v().0));
        (key, e.u().0, e.v().0)
    }

    /// A full RNG stream for `tag`, for uses that need many draws
    /// (e.g. the referee's tie-breaking). Streams with different tags are
    /// independent.
    pub fn stream(&self, tag: u64) -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(mix(self.seed ^ mix(tag.wrapping_add(0x5bd1))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_clones() {
        let a = SharedRandomness::new(42);
        let b = SharedRandomness::new(42);
        for tag in 0..5u64 {
            for item in 0..100u64 {
                assert_eq!(a.value(tag, item), b.value(tag, item));
                assert_eq!(a.unit(tag, item), b.unit(tag, item));
            }
        }
    }

    #[test]
    fn different_tags_decorrelate() {
        let s = SharedRandomness::new(7);
        let same = (0..1000u64)
            .filter(|i| s.coin(1, *i, 0.5) == s.coin(2, *i, 0.5))
            .count();
        // ~500 expected; far from 0 or 1000.
        assert!((300..700).contains(&same), "agreement {same}");
    }

    #[test]
    fn coin_frequency_matches_probability() {
        let s = SharedRandomness::new(123);
        for &p in &[0.1f64, 0.5, 0.9] {
            let hits = (0..20_000u64).filter(|i| s.coin(9, *i, p)).count() as f64;
            let freq = hits / 20_000.0;
            assert!((freq - p).abs() < 0.02, "p={p} freq={freq}");
        }
    }

    #[test]
    fn unit_is_in_range() {
        let s = SharedRandomness::new(5);
        for i in 0..1000 {
            let u = s.unit(3, i);
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn vertex_rank_orders_uniformly() {
        let s = SharedRandomness::new(11);
        // The minimum-rank vertex over 0..100 should be roughly uniform
        // over draws of the tag.
        let mut winners = std::collections::HashSet::new();
        for tag in 0..200u64 {
            let w = (0..100u32)
                .map(VertexId)
                .min_by_key(|v| s.vertex_rank(tag, *v))
                .unwrap();
            winners.insert(w.0);
        }
        assert!(
            winners.len() > 50,
            "only {} distinct winners",
            winners.len()
        );
    }

    #[test]
    fn streams_are_reproducible() {
        use rand::RngCore;
        let s = SharedRandomness::new(9);
        let mut r1 = s.stream(4);
        let mut r2 = s.stream(4);
        assert_eq!(r1.next_u64(), r2.next_u64());
        let mut r3 = s.stream(5);
        assert_ne!(s.stream(4).next_u64(), r3.next_u64());
    }

    #[test]
    fn edge_rank_consistency() {
        let s = SharedRandomness::new(3);
        let e1 = Edge::new(VertexId(1), VertexId(2));
        let e2 = Edge::new(VertexId(2), VertexId(1));
        assert_eq!(s.edge_rank(0, e1), s.edge_rank(0, e2));
    }
}
