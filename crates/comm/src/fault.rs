//! Seeded, deterministic fault injection for coordinator protocols.
//!
//! The paper analyzes a failure-free coordinator model, but the threaded
//! transport already has real failure modes (a player thread can panic
//! and hang up), and distributed triangle-detection work treats message
//! loss as first-class. This module makes faults *measurable*: a
//! [`FaultPlan`] decides, reproducibly per `(seed, rep, player,
//! request-index)`, whether a delivery is dropped, delayed, duplicated,
//! corrupted, or whether the player crashes outright; a
//! [`FaultyTransport`] decorator injects those decisions under any inner
//! [`Transport`]. Corruption is detected by checksummed payload framing
//! ([`Framed`]), and recovery cost is charged to the active recorder
//! under the [`RETRANSMIT_LABEL`] label so chaos runs stay honest about
//! `CC(Π)` (see `docs/FAULTS.md`).
//!
//! Determinism guarantee: every fault decision is a pure function of the
//! plan seed and the delivery coordinates. Re-running the same plan over
//! the same protocol and input yields the same faults, the same retries,
//! and the same transcript — at any thread count.

use crate::message::Payload;
use crate::player::PlayerState;
use crate::rand::{mix64, SharedRandomness};
use crate::recorder::Recorder;
use crate::runtime::{RunError, Transport, TransportError};
use crate::simultaneous::{SimMessage, SimRun, SimultaneousProtocol};
use crate::transcript::{CommStats, Direction};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use triad_graph::{Edge, VertexId};

/// Label (and phase) under which all fault-recovery traffic is charged:
/// retransmitted requests, duplicate deliveries, and garbled responses
/// that crossed the wire before their checksum failed. Recorders roll it
/// up via [`Recorder::retransmit_bits`].
pub const RETRANSMIT_LABEL: &str = "retransmit";

/// The kinds of injectable faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The response is lost; the coordinator's receive deadline expires.
    Drop,
    /// The response arrives late but within the deadline (counted, not
    /// charged — a latency, not a cost, event).
    Delay,
    /// The response is delivered twice; the extra copy is charged as
    /// retransmitted bits.
    Duplicate,
    /// The response payload is bit-flipped in flight; the checksum frame
    /// detects it on arrival.
    Corrupt,
    /// The player crashes and stays dead for the rest of the run.
    Crash,
}

/// Per-delivery fault probabilities, each in `[0, 1]`.
///
/// Probabilities are evaluated cumulatively in declaration order from a
/// single uniform draw, so the kinds are mutually exclusive per
/// delivery; a total above 1 saturates.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultRates {
    /// Probability a response is dropped.
    pub drop: f64,
    /// Probability a response is corrupted in flight.
    pub corrupt: f64,
    /// Probability a response is delivered twice.
    pub duplicate: f64,
    /// Probability a response is delayed (within deadline).
    pub delay: f64,
    /// Probability the player crashes.
    pub crash: f64,
}

impl FaultRates {
    /// No faults at all.
    pub fn none() -> Self {
        FaultRates::default()
    }

    /// Omission faults only: responses dropped with probability `rate`.
    pub fn omission(rate: f64) -> Self {
        FaultRates {
            drop: rate,
            ..FaultRates::default()
        }
    }

    /// A mixed workload at overall fault probability `rate`, split
    /// 40% drops / 20% corruptions / 15% duplicates / 15% delays /
    /// 10% crashes — the default chaos-matrix blend.
    pub fn mixed(rate: f64) -> Self {
        FaultRates {
            drop: rate * 0.40,
            corrupt: rate * 0.20,
            duplicate: rate * 0.15,
            delay: rate * 0.15,
            crash: rate * 0.10,
        }
    }

    /// Sum of all fault probabilities (before saturation).
    pub fn total(&self) -> f64 {
        self.drop + self.corrupt + self.duplicate + self.delay + self.crash
    }
}

/// A reproducible schedule of faults: every decision is a pure splitmix64
/// function of `(seed, rep, player, request-index)`, so the same plan
/// replays the same faults on every run, machine, and thread count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    rates: FaultRates,
}

/// Domain-separation constant for fault decisions (distinct from every
/// protocol randomness domain, so chaos never perturbs the protocol's
/// own coin flips).
const FAULT_DOMAIN: u64 = 0xFA17_7C0D_E5EE_D001;
/// Domain-separation constant for corruption bit positions.
const SALT_DOMAIN: u64 = 0xFA17_7C0D_E5EE_D002;

impl FaultPlan {
    /// A plan injecting faults at the given per-delivery rates.
    pub fn new(seed: u64, rates: FaultRates) -> Self {
        FaultPlan { seed, rates }
    }

    /// The fault-free plan (rate 0 everywhere): decorating a transport
    /// with it is byte-identical to not decorating at all.
    pub fn fault_free(seed: u64) -> Self {
        FaultPlan::new(seed, FaultRates::none())
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The plan's per-delivery rates.
    pub fn rates(&self) -> &FaultRates {
        &self.rates
    }

    /// Whether this plan can never inject a fault.
    pub fn is_fault_free(&self) -> bool {
        self.rates.total() == 0.0
    }

    fn draw(&self, domain: u64, rep: u32, player: usize, request_index: u64) -> u64 {
        let mut h = mix64(self.seed ^ domain);
        h = mix64(h ^ u64::from(rep));
        h = mix64(h ^ player as u64);
        mix64(h ^ request_index)
    }

    /// The fault (if any) injected on delivery `request_index` to
    /// `player` during repetition `rep`. Pure and reproducible.
    pub fn fault_at(&self, rep: u32, player: usize, request_index: u64) -> Option<FaultKind> {
        if self.is_fault_free() {
            return None;
        }
        // 53 uniform mantissa bits, the standard float-from-u64 recipe.
        let u = (self.draw(FAULT_DOMAIN, rep, player, request_index) >> 11) as f64
            * (1.0 / (1u64 << 53) as f64);
        let r = &self.rates;
        let mut t = r.drop;
        if u < t {
            return Some(FaultKind::Drop);
        }
        t += r.corrupt;
        if u < t {
            return Some(FaultKind::Corrupt);
        }
        t += r.duplicate;
        if u < t {
            return Some(FaultKind::Duplicate);
        }
        t += r.delay;
        if u < t {
            return Some(FaultKind::Delay);
        }
        t += r.crash;
        if u < t {
            return Some(FaultKind::Crash);
        }
        None
    }

    /// The deterministic bit-position salt used when corrupting the
    /// payload of delivery `request_index`.
    pub fn corruption_salt(&self, rep: u32, player: usize, request_index: u64) -> u64 {
        self.draw(SALT_DOMAIN, rep, player, request_index)
    }
}

/// Counters of faults actually injected (as opposed to scheduled rates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Responses dropped.
    pub drops: u64,
    /// Responses corrupted.
    pub corruptions: u64,
    /// Responses duplicated.
    pub duplicates: u64,
    /// Responses delayed within deadline.
    pub delays: u64,
    /// Player crashes.
    pub crashes: u64,
}

impl FaultStats {
    /// Total injected faults.
    pub fn total(&self) -> u64 {
        self.drops + self.corruptions + self.duplicates + self.delays + self.crashes
    }

    /// Component-wise sum — aggregates injected-fault counts across
    /// repetitions of a chaos sweep.
    #[must_use]
    pub fn merged(self, other: FaultStats) -> FaultStats {
        FaultStats {
            drops: self.drops + other.drops,
            corruptions: self.corruptions + other.corruptions,
            duplicates: self.duplicates + other.duplicates,
            delays: self.delays + other.delays,
            crashes: self.crashes + other.crashes,
        }
    }

    fn bump(&mut self, kind: FaultKind) {
        match kind {
            FaultKind::Drop => self.drops += 1,
            FaultKind::Corrupt => self.corruptions += 1,
            FaultKind::Duplicate => self.duplicates += 1,
            FaultKind::Delay => self.delays += 1,
            FaultKind::Crash => self.crashes += 1,
        }
    }
}

/// Shared atomic fault counters: a [`FaultyTransport`] moves into a
/// `Box<dyn Transport>` inside the runtime, so callers keep a handle to
/// its counters through this cloneable cell instead.
#[derive(Debug, Default)]
pub struct FaultCounters {
    drops: AtomicU64,
    corruptions: AtomicU64,
    duplicates: AtomicU64,
    delays: AtomicU64,
    crashes: AtomicU64,
}

impl FaultCounters {
    fn bump(&self, kind: FaultKind) {
        let slot = match kind {
            FaultKind::Drop => &self.drops,
            FaultKind::Corrupt => &self.corruptions,
            FaultKind::Duplicate => &self.duplicates,
            FaultKind::Delay => &self.delays,
            FaultKind::Crash => &self.crashes,
        };
        slot.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> FaultStats {
        FaultStats {
            drops: self.drops.load(Ordering::Relaxed),
            corruptions: self.corruptions.load(Ordering::Relaxed),
            duplicates: self.duplicates.load(Ordering::Relaxed),
            delays: self.delays.load(Ordering::Relaxed),
            crashes: self.crashes.load(Ordering::Relaxed),
        }
    }
}

/// A checksum-framed payload: what a transport actually puts on the
/// wire. The checksum is computed sender-side over the payload content;
/// the coordinator verifies on arrival, so in-flight corruption is
/// detected instead of silently mis-parsed. `deliveries > 1` models a
/// duplicated delivery (the extra copies are charged as retransmitted
/// bits but handed to the protocol once).
#[derive(Debug, Clone, PartialEq)]
pub struct Framed {
    payload: Payload<'static>,
    checksum: u64,
    deliveries: u32,
    delayed: bool,
}

impl Framed {
    /// Frames an honest payload: checksum matches, one delivery.
    pub fn seal(payload: Payload<'static>) -> Self {
        let checksum = checksum_payload(&payload);
        Framed {
            payload,
            checksum,
            deliveries: 1,
            delayed: false,
        }
    }

    /// Whether the payload still matches its sender-side checksum.
    pub fn verify(&self) -> bool {
        checksum_payload(&self.payload) == self.checksum
    }

    /// The framed payload (possibly corrupted; check [`verify`] first).
    ///
    /// [`verify`]: Self::verify
    pub fn payload(&self) -> &Payload<'static> {
        &self.payload
    }

    /// Unwraps the payload.
    pub fn into_payload(self) -> Payload<'static> {
        self.payload
    }

    /// How many times this frame was delivered (≥ 1).
    pub fn deliveries(&self) -> u32 {
        self.deliveries
    }

    /// Whether the frame arrived late (within deadline).
    pub fn delayed(&self) -> bool {
        self.delayed
    }

    /// Replaces the payload *without* updating the checksum — the
    /// fault injector's model of in-flight corruption.
    pub fn tamper(&mut self, garbled: Payload<'static>) {
        self.payload = garbled;
    }

    /// Marks the frame as delivered `extra` additional times.
    pub fn duplicate(&mut self, extra: u32) {
        self.deliveries += extra;
    }

    /// Marks the frame as delayed.
    pub fn mark_delayed(&mut self) {
        self.delayed = true;
    }
}

fn fold(acc: u64, x: u64) -> u64 {
    mix64(acc ^ x.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// A 64-bit checksum over a payload's content (variant tag + values),
/// independent of ownership and of `n`. Collision-resistant enough for
/// fault *detection* (this is framing, not cryptography).
pub fn checksum_payload(p: &Payload<'_>) -> u64 {
    match p {
        Payload::Empty => fold(1, 0),
        Payload::Bit(b) => fold(2, u64::from(*b)),
        Payload::Bits(v, w) => fold(fold(3, *v), u64::from(*w)),
        Payload::Count(c) => fold(4, *c),
        Payload::Vertex(o) => match o {
            None => fold(5, 0),
            Some(v) => fold(5, 1 + u64::from(v.0)),
        },
        Payload::Vertices(vs) => vs
            .iter()
            .fold(fold(6, vs.len() as u64), |a, v| fold(a, u64::from(v.0))),
        Payload::Edge(o) => match o {
            None => fold(7, 0),
            Some(e) => fold(fold(7, 1 + u64::from(e.u().0)), u64::from(e.v().0)),
        },
        Payload::Edges(es) => es.iter().fold(fold(8, es.len() as u64), |a, e| {
            fold(fold(a, u64::from(e.u().0)), u64::from(e.v().0))
        }),
        // Folded over the canonical edge iteration, so the checksum is
        // independent of which rows happen to be sparse or dense — but
        // the leading tag keeps it distinct from an `Edges` payload
        // holding the same set (a representation flip is corruption).
        Payload::EdgeBits(set) => set.edges().fold(fold(11, set.len() as u64), |a, e| {
            fold(fold(a, u64::from(e.u().0)), u64::from(e.v().0))
        }),
        Payload::Triangle(o) => match o {
            None => fold(9, 0),
            Some(t) => {
                let [a, b, c] = t.vertices();
                fold(
                    fold(fold(9, 1 + u64::from(a.0)), u64::from(b.0)),
                    u64::from(c.0),
                )
            }
        },
        Payload::Probability(p) => fold(10, p.to_bits()),
    }
}

/// Flips one endpoint bit of `e`, avoiding the self-loop that
/// `Edge::new` rejects.
fn flip_edge(e: Edge) -> Edge {
    let flipped = VertexId(e.u().0 ^ 1);
    if flipped == e.v() {
        // u^1 == v means v^1 == u too; a second-bit flip always differs.
        Edge::new(VertexId(e.u().0 ^ 2), e.v())
    } else {
        Edge::new(flipped, e.v())
    }
}

/// Deterministically garbles a payload — the model of in-flight
/// bit-flips. The result always differs from the input under
/// [`checksum_payload`], so a [`Framed::verify`] on the tampered frame
/// fails. Corrupted payloads never reach protocol logic: the runtime
/// verifies the frame before handing the payload on.
pub fn corrupt_payload(p: Payload<'static>, salt: u64) -> Payload<'static> {
    match p {
        Payload::Empty => Payload::Bit(true),
        Payload::Bit(b) => Payload::Bit(!b),
        Payload::Bits(v, w) if w > 0 => Payload::Bits(v ^ (1 << (salt % u64::from(w))), w),
        Payload::Bits(_, w) => Payload::Bits(1, w.max(1)),
        Payload::Count(c) => Payload::Count(c ^ (1 << (salt % 8))),
        Payload::Vertex(None) => Payload::Vertex(Some(VertexId((salt & 0xFF) as u32))),
        Payload::Vertex(Some(v)) => Payload::Vertex(Some(VertexId(v.0 ^ 1))),
        Payload::Vertices(mut vs) => {
            if vs.is_empty() {
                Payload::Vertices(vec![VertexId((salt & 0xFF) as u32)])
            } else {
                let i = (salt as usize) % vs.len();
                vs[i] = VertexId(vs[i].0 ^ 1);
                Payload::Vertices(vs)
            }
        }
        Payload::Edge(None) => Payload::Edge(Some(Edge::new(VertexId(0), VertexId(1)))),
        Payload::Edge(Some(e)) => Payload::Edge(Some(flip_edge(e))),
        Payload::Edges(es) => {
            let mut v = es.into_owned();
            if v.is_empty() {
                Payload::Edge(None)
            } else {
                let i = (salt as usize) % v.len();
                v[i] = flip_edge(v[i]);
                Payload::Edges(v.into())
            }
        }
        Payload::EdgeBits(set) => {
            let set = set.into_owned();
            let n = set.n();
            let mut v = set.to_edges();
            if v.is_empty() {
                Payload::Edge(None)
            } else {
                let i = (salt as usize) % v.len();
                let flipped = flip_edge(v[i]);
                if flipped.v().index() < n {
                    // The flip may collide with another edge of the set;
                    // either way the canonical edge sequence changes.
                    v[i] = flipped;
                } else {
                    // Flip would leave the bitset's vertex range (tiny
                    // n): dropping the edge still changes the set.
                    v.remove(i);
                }
                Payload::EdgeBits(std::borrow::Cow::Owned(
                    triad_graph::kernels::EdgeBitset::from_edges(n, v),
                ))
            }
        }
        Payload::Triangle(None) => Payload::Triangle(Some(triad_graph::Triangle::new(
            VertexId(0),
            VertexId(1),
            VertexId(2),
        ))),
        Payload::Triangle(Some(_)) => Payload::Triangle(None),
        Payload::Probability(p) => Payload::Probability(f64::from_bits(p.to_bits() ^ 1)),
    }
}

/// A [`Transport`] decorator injecting the faults a [`FaultPlan`]
/// schedules. Crashed players stay crashed for the rest of the run;
/// every other fault is per-delivery. Deterministic: the i-th delivery
/// to player `j` is faulted identically on every replay.
///
/// # Example
///
/// Wrapping any inner transport (here a [`LocalTransport`][lt]; a
/// [`TcpTransport`][tt] works identically — that is the TCP conformance
/// suite) and driving it through a [`Runtime`](crate::runtime::Runtime).
/// Keep the [`counters`](Self::counters) handle: the transport itself
/// moves into the runtime.
///
/// ```
/// use triad_comm::fault::{FaultPlan, FaultRates, FaultyTransport};
/// use triad_comm::{
///     CostModel, LocalTransport, PlayerRequest, Runtime, SharedRandomness,
/// };
/// use triad_graph::{Edge, VertexId};
///
/// let e = |a, b| Edge::new(VertexId(a), VertexId(b));
/// let shares = vec![vec![e(0, 1)], vec![e(1, 2)]];
/// let shared = SharedRandomness::new(7);
/// let inner = LocalTransport::new(3, &shares, shared);
/// let faulty = FaultyTransport::new(inner, FaultPlan::new(1, FaultRates::mixed(0.5)), 0);
/// let stats = faulty.counters();
/// let mut rt = Runtime::new(Box::new(faulty), 3, shared, CostModel::Coordinator);
/// for _ in 0..16 {
///     rt.request(0, PlayerRequest::LocalEdgeCount);
/// }
/// // Either a fault was injected (and counted) or the run stayed clean;
/// // an unrecovered one is parked on the runtime, never panicked.
/// let injected = stats.snapshot().total();
/// let _ = rt.take_fault();
/// assert!(injected > 0, "a 50% mixed rate over 16 deliveries injects something");
/// ```
///
/// [lt]: crate::runtime::LocalTransport
/// [tt]: crate::runtime::TcpTransport
#[derive(Debug)]
pub struct FaultyTransport<T> {
    inner: T,
    plan: FaultPlan,
    rep: u32,
    counters: Vec<u64>,
    crashed: Vec<bool>,
    stats: Arc<FaultCounters>,
}

impl<T: Transport> FaultyTransport<T> {
    /// Decorates `inner` with the faults `plan` schedules for
    /// repetition `rep`.
    pub fn new(inner: T, plan: FaultPlan, rep: u32) -> Self {
        let k = inner.k();
        FaultyTransport {
            inner,
            plan,
            rep,
            counters: vec![0; k],
            crashed: vec![false; k],
            stats: Arc::new(FaultCounters::default()),
        }
    }

    /// A handle to the injected-fault counters that outlives the
    /// transport's move into the runtime.
    pub fn counters(&self) -> Arc<FaultCounters> {
        Arc::clone(&self.stats)
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn k(&self) -> usize {
        self.inner.k()
    }

    fn try_deliver(
        &mut self,
        player: usize,
        req: &crate::request::PlayerRequest,
    ) -> Result<Payload<'static>, RunError> {
        let framed = self.try_deliver_framed(player, req)?;
        if framed.verify() {
            Ok(framed.into_payload())
        } else {
            Err(RunError::Corrupt { player })
        }
    }

    fn try_deliver_framed(
        &mut self,
        player: usize,
        req: &crate::request::PlayerRequest,
    ) -> Result<Framed, RunError> {
        if self.crashed[player] {
            return Err(RunError::Transport(TransportError { player }));
        }
        let idx = self.counters[player];
        self.counters[player] += 1;
        let fault = self.plan.fault_at(self.rep, player, idx);
        match fault {
            Some(FaultKind::Drop) => {
                self.stats.bump(FaultKind::Drop);
                Err(RunError::Timeout { player })
            }
            Some(FaultKind::Crash) => {
                self.stats.bump(FaultKind::Crash);
                self.crashed[player] = true;
                Err(RunError::Transport(TransportError { player }))
            }
            _ => {
                let mut framed = self.inner.try_deliver_framed(player, req)?;
                match fault {
                    Some(FaultKind::Corrupt) => {
                        self.stats.bump(FaultKind::Corrupt);
                        let salt = self.plan.corruption_salt(self.rep, player, idx);
                        let garbled = corrupt_payload(framed.payload().clone(), salt);
                        framed.tamper(garbled);
                    }
                    Some(FaultKind::Duplicate) => {
                        self.stats.bump(FaultKind::Duplicate);
                        framed.duplicate(1);
                    }
                    Some(FaultKind::Delay) => {
                        self.stats.bump(FaultKind::Delay);
                        framed.mark_delayed();
                    }
                    _ => {}
                }
                Ok(framed)
            }
        }
    }

    fn adopt_shared(&mut self, shared: SharedRandomness) {
        self.inner.adopt_shared(shared);
    }
}

/// A failed chaos execution: the error that killed the repetition plus
/// the communication already spent — failed reps still pay for their
/// bits, so amplified chaos accounting stays honest.
#[derive(Debug, Clone)]
pub struct ChaosFailure<R> {
    /// What killed the repetition.
    pub error: RunError,
    /// Bits spent before (and on) the failure.
    pub stats: CommStats,
    /// The recorder at the point of failure.
    pub transcript: R,
    /// Faults injected during the repetition.
    pub injected: FaultStats,
}

/// A surviving chaos execution: the run plus its injected-fault counts.
#[derive(Debug, Clone)]
pub struct SimChaos<O, R> {
    /// The completed run.
    pub run: SimRun<O, R>,
    /// Faults injected during the repetition (delays and recovered
    /// duplicates; fatal kinds end up in [`ChaosFailure`] instead).
    pub injected: FaultStats,
}

/// Runs a one-round (simultaneous) protocol under a fault plan.
///
/// Simultaneous protocols cannot retry — each player speaks exactly
/// once — so any drop, crash, or corruption of a player's message is
/// fatal to the repetition and surfaces as a [`ChaosFailure`] carrying
/// the bits that were nevertheless transmitted. Duplicate deliveries
/// survive: the extra copy is charged under [`RETRANSMIT_LABEL`].
/// Delays are counted but cost nothing.
///
/// With a fault-free plan this is byte-identical to
/// [`crate::run_simultaneous_prepared`] (pinned by
/// `tests/chaos_differential.rs`).
///
/// # Errors
///
/// Returns [`ChaosFailure`] naming the first faulted player (in player
/// order) when any message is dropped, corrupted, or lost to a crash.
pub fn run_simultaneous_chaos<P: SimultaneousProtocol, R: Recorder>(
    protocol: &P,
    n: usize,
    players: &[PlayerState],
    shared: SharedRandomness,
    plan: &FaultPlan,
    rep: u32,
) -> Result<SimChaos<P::Output, R>, ChaosFailure<R>> {
    let messages: Vec<SimMessage> = players
        .iter()
        .map(|p| protocol.message(p, &shared))
        .collect();
    let mut injected = FaultStats::default();
    let mut fatal: Option<RunError> = None;
    let mut duplicated: Vec<usize> = Vec::new();
    for (j, m) in messages.iter().enumerate() {
        match plan.fault_at(rep, j, 0) {
            Some(FaultKind::Drop) => {
                injected.bump(FaultKind::Drop);
                fatal.get_or_insert(RunError::Timeout { player: j });
            }
            Some(FaultKind::Crash) => {
                injected.bump(FaultKind::Crash);
                fatal.get_or_insert(RunError::Transport(TransportError { player: j }));
            }
            Some(FaultKind::Corrupt) => {
                injected.bump(FaultKind::Corrupt);
                // Exercise the framing machinery: the garbled first
                // payload must fail verification.
                if let Some(p) = m.payloads().first() {
                    let mut frame = Framed::seal(p.clone().into_owned());
                    frame.tamper(corrupt_payload(
                        p.clone().into_owned(),
                        plan.corruption_salt(rep, j, 0),
                    ));
                    debug_assert!(!frame.verify(), "tampered frame must fail verification");
                }
                fatal.get_or_insert(RunError::Corrupt { player: j });
            }
            Some(FaultKind::Duplicate) => {
                injected.bump(FaultKind::Duplicate);
                duplicated.push(j);
            }
            Some(FaultKind::Delay) => {
                injected.bump(FaultKind::Delay);
            }
            None => {}
        }
    }
    if let Some(error) = fatal {
        // Every message was sent simultaneously before the faults hit:
        // the bits are spent whether or not the referee can proceed.
        let mut transcript = R::with_players(messages.len());
        transcript.reserve_messages(messages.iter().map(|m| m.payloads().len()).sum());
        let mut total = 0u64;
        let mut per_player_bits = vec![0u64; messages.len()];
        for (j, m) in messages.iter().enumerate() {
            for (payload, phase) in m.payloads().iter().zip(m.phases()) {
                transcript.set_phase(phase);
                transcript.record(Some(j), Direction::ToCoordinator, payload.bit_len(n), phase);
            }
            per_player_bits[j] = m.bit_len(n).get();
            total += per_player_bits[j];
        }
        return Err(ChaosFailure {
            error,
            stats: CommStats {
                total_bits: total,
                rounds: 1,
                messages: messages.len() as u64,
                max_player_sent_bits: per_player_bits.iter().copied().max().unwrap_or(0),
            },
            transcript,
            injected,
        });
    }
    let mut run: SimRun<P::Output, R> = crate::simultaneous::finish(protocol, n, messages, shared);
    for j in duplicated {
        let extra = run.per_player_bits[j];
        run.transcript.set_phase(RETRANSMIT_LABEL);
        run.transcript.record(
            Some(j),
            Direction::ToCoordinator,
            crate::bits::BitCost(extra),
            RETRANSMIT_LABEL,
        );
        run.per_player_bits[j] += extra;
        run.stats.total_bits += extra;
        run.stats.messages += 1;
    }
    run.stats.max_player_sent_bits = run.per_player_bits.iter().copied().max().unwrap_or(0);
    Ok(SimChaos { run, injected })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::PlayerRequest;
    use crate::runtime::LocalTransport;

    fn e(a: u32, b: u32) -> Edge {
        Edge::new(VertexId(a), VertexId(b))
    }

    #[test]
    fn plan_is_deterministic_and_rate_bounded() {
        let plan = FaultPlan::new(7, FaultRates::mixed(0.3));
        let mut hits = 0u32;
        for idx in 0..1000 {
            let a = plan.fault_at(2, 1, idx);
            let b = plan.fault_at(2, 1, idx);
            assert_eq!(a, b, "decisions must replay identically");
            if a.is_some() {
                hits += 1;
            }
        }
        // 30% nominal over 1000 draws: a loose 2-sided sanity band.
        assert!((150..450).contains(&hits), "got {hits} faults");
        // Different coordinates decorrelate.
        let a: Vec<_> = (0..64).map(|i| plan.fault_at(0, 0, i)).collect();
        let b: Vec<_> = (0..64).map(|i| plan.fault_at(1, 0, i)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn fault_free_plan_never_fires() {
        let plan = FaultPlan::fault_free(99);
        assert!(plan.is_fault_free());
        for idx in 0..200 {
            assert_eq!(plan.fault_at(0, 0, idx), None);
        }
    }

    #[test]
    fn checksum_detects_every_corruption() {
        let payloads: Vec<Payload<'static>> = vec![
            Payload::Empty,
            Payload::Bit(true),
            Payload::Bits(0b1011, 6),
            Payload::Count(255),
            Payload::Vertex(None),
            Payload::Vertex(Some(VertexId(4))),
            Payload::Vertices(vec![VertexId(1), VertexId(2)]),
            Payload::Vertices(vec![]),
            Payload::Edge(None),
            Payload::Edge(Some(e(0, 1))),
            Payload::Edges(vec![e(0, 1), e(2, 3)].into()),
            Payload::Edges(vec![].into()),
            Payload::EdgeBits(std::borrow::Cow::Owned(
                triad_graph::kernels::EdgeBitset::from_edges(8, vec![e(0, 1), e(2, 3)]),
            )),
            Payload::EdgeBits(std::borrow::Cow::Owned(
                triad_graph::kernels::EdgeBitset::from_edges(
                    128,
                    (1..128u32).map(|v| e(0, v)).collect::<Vec<_>>(),
                ),
            )),
            Payload::EdgeBits(std::borrow::Cow::Owned(
                triad_graph::kernels::EdgeBitset::new(2),
            )),
            // n = 2 with its only edge: the corrupting flip would leave
            // the vertex range, exercising the drop-the-edge fallback.
            Payload::EdgeBits(std::borrow::Cow::Owned(
                triad_graph::kernels::EdgeBitset::from_edges(2, vec![e(0, 1)]),
            )),
            Payload::Triangle(None),
            Payload::Triangle(Some(triad_graph::Triangle::new(
                VertexId(0),
                VertexId(1),
                VertexId(2),
            ))),
            Payload::Probability(0.25),
        ];
        for p in payloads {
            for salt in [0u64, 1, 17, u64::MAX] {
                let garbled = corrupt_payload(p.clone(), salt);
                assert_ne!(
                    checksum_payload(&p),
                    checksum_payload(&garbled),
                    "corruption of {p:?} (salt {salt}) must change the checksum"
                );
                let mut frame = Framed::seal(p.clone());
                assert!(frame.verify());
                frame.tamper(garbled);
                assert!(!frame.verify());
            }
        }
    }

    #[test]
    fn faulty_transport_at_rate_zero_is_transparent() {
        let shares = vec![vec![e(0, 1)], vec![e(1, 2)]];
        let shared = SharedRandomness::new(3);
        let mut plain = LocalTransport::new(3, &shares, shared);
        let mut faulty = FaultyTransport::new(
            LocalTransport::new(3, &shares, shared),
            FaultPlan::fault_free(1),
            0,
        );
        for req in [
            PlayerRequest::LocalEdgeCount,
            PlayerRequest::HasEdge(e(0, 1)),
        ] {
            for j in 0..2 {
                assert_eq!(
                    plain.try_deliver(j, &req).unwrap(),
                    faulty.try_deliver(j, &req).unwrap()
                );
            }
        }
        assert_eq!(faulty.counters().snapshot(), FaultStats::default());
    }

    #[test]
    fn crash_is_sticky_and_drop_is_timeout() {
        let shares = vec![vec![e(0, 1)]];
        let shared = SharedRandomness::new(3);
        // Crash with probability 1 on every delivery.
        let crash_all = FaultPlan::new(
            5,
            FaultRates {
                crash: 1.0,
                ..FaultRates::default()
            },
        );
        let mut t = FaultyTransport::new(LocalTransport::new(3, &shares, shared), crash_all, 0);
        let err = t
            .try_deliver(0, &PlayerRequest::LocalEdgeCount)
            .unwrap_err();
        assert!(matches!(err, RunError::Transport(_)), "{err:?}");
        // Stays dead even though the plan is consulted per delivery.
        let err = t
            .try_deliver(0, &PlayerRequest::LocalEdgeCount)
            .unwrap_err();
        assert!(matches!(err, RunError::Transport(_)), "{err:?}");
        assert_eq!(t.counters().snapshot().crashes, 1, "crash injected once");

        let drop_all = FaultPlan::new(5, FaultRates::omission(1.0));
        let mut t = FaultyTransport::new(LocalTransport::new(3, &shares, shared), drop_all, 0);
        let err = t
            .try_deliver(0, &PlayerRequest::LocalEdgeCount)
            .unwrap_err();
        assert_eq!(err, RunError::Timeout { player: 0 });
    }

    #[test]
    fn corruption_surfaces_as_corrupt_error() {
        let shares = vec![vec![e(0, 1), e(1, 2)]];
        let shared = SharedRandomness::new(3);
        let corrupt_all = FaultPlan::new(
            5,
            FaultRates {
                corrupt: 1.0,
                ..FaultRates::default()
            },
        );
        let mut t = FaultyTransport::new(LocalTransport::new(3, &shares, shared), corrupt_all, 0);
        let err = t
            .try_deliver(0, &PlayerRequest::LocalEdgeCount)
            .unwrap_err();
        assert_eq!(err, RunError::Corrupt { player: 0 });
        // The framed path hands back the garbled frame for inspection.
        let frame = t
            .try_deliver_framed(0, &PlayerRequest::LocalEdgeCount)
            .unwrap();
        assert!(!frame.verify());
    }

    #[test]
    fn duplicate_marks_extra_delivery() {
        let shares = vec![vec![e(0, 1)]];
        let shared = SharedRandomness::new(3);
        let dup_all = FaultPlan::new(
            5,
            FaultRates {
                duplicate: 1.0,
                ..FaultRates::default()
            },
        );
        let mut t = FaultyTransport::new(LocalTransport::new(3, &shares, shared), dup_all, 0);
        let frame = t
            .try_deliver_framed(0, &PlayerRequest::LocalEdgeCount)
            .unwrap();
        assert_eq!(frame.deliveries(), 2);
        assert!(frame.verify());
    }
}
