//! The bit-level cost model.
//!
//! The paper measures a protocol by the expected number of bits exchanged
//! between the players and the coordinator. We charge:
//!
//! * `⌈log₂ n⌉` bits per vertex identifier,
//! * twice that per edge,
//! * `⌊log₂ x⌋ + 1` bits per unbounded non-negative integer (its binary
//!   length; we do not model self-delimiting overhead, which only changes
//!   constants),
//! * one bit per boolean.

use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// A number of communicated bits.
///
/// A newtype so bit budgets are never confused with counts or vertex ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BitCost(pub u64);

impl BitCost {
    /// Zero bits.
    pub const ZERO: BitCost = BitCost(0);

    /// The raw bit count.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, other: BitCost) -> BitCost {
        BitCost(self.0.saturating_add(other.0))
    }

    /// Adds `rhs` into an accumulator under the repository's single
    /// overflow policy: checked in debug builds (an overflow is an
    /// accounting bug and must abort the run), saturating at
    /// `u64::MAX` in release builds (a pinned ceiling beats silent
    /// wraparound in long amplified sweeps). Every cost accumulator —
    /// [`crate::transcript::Transcript`], [`crate::recorder::Tally`],
    /// the runtime — funnels through this helper.
    #[inline]
    pub fn accumulate(&mut self, rhs: BitCost) {
        debug_assert!(
            self.0.checked_add(rhs.0).is_some(),
            "BitCost overflow: {} + {}",
            self.0,
            rhs.0
        );
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Add for BitCost {
    type Output = BitCost;
    fn add(self, rhs: BitCost) -> BitCost {
        BitCost(self.0 + rhs.0)
    }
}

impl AddAssign for BitCost {
    fn add_assign(&mut self, rhs: BitCost) {
        self.0 += rhs.0;
    }
}

impl Sum for BitCost {
    fn sum<I: Iterator<Item = BitCost>>(iter: I) -> BitCost {
        BitCost(iter.map(|b| b.0).sum())
    }
}

impl std::fmt::Display for BitCost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} bits", self.0)
    }
}

impl From<u64> for BitCost {
    fn from(v: u64) -> Self {
        BitCost(v)
    }
}

/// Bits to name one vertex out of `n`: `⌈log₂ n⌉` (min 1).
#[inline]
pub fn bits_per_vertex(n: usize) -> u64 {
    let n = n.max(2) as u64;
    64 - (n - 1).leading_zeros() as u64
}

/// Bits to name one edge out of `n` vertices: two vertex ids.
#[inline]
pub fn bits_per_edge(n: usize) -> u64 {
    2 * bits_per_vertex(n)
}

/// Binary length of a non-negative integer: `⌊log₂ x⌋ + 1` (1 for zero).
#[inline]
pub fn bits_for_count(x: u64) -> u64 {
    (64 - x.leading_zeros() as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_bits() {
        assert_eq!(bits_per_vertex(2), 1);
        assert_eq!(bits_per_vertex(3), 2);
        assert_eq!(bits_per_vertex(4), 2);
        assert_eq!(bits_per_vertex(5), 3);
        assert_eq!(bits_per_vertex(1024), 10);
        assert_eq!(bits_per_vertex(1025), 11);
        // degenerate inputs still cost one bit
        assert_eq!(bits_per_vertex(0), 1);
        assert_eq!(bits_per_vertex(1), 1);
    }

    #[test]
    fn edge_bits_are_double() {
        for n in [2usize, 10, 100, 1 << 20] {
            assert_eq!(bits_per_edge(n), 2 * bits_per_vertex(n));
        }
    }

    #[test]
    fn count_bits() {
        assert_eq!(bits_for_count(0), 1);
        assert_eq!(bits_for_count(1), 1);
        assert_eq!(bits_for_count(2), 2);
        assert_eq!(bits_for_count(255), 8);
        assert_eq!(bits_for_count(256), 9);
        assert_eq!(bits_for_count(u64::MAX), 64);
    }

    #[test]
    fn bitcost_arithmetic() {
        let mut c = BitCost::ZERO;
        c += BitCost(5);
        assert_eq!(c + BitCost(3), BitCost(8));
        let total: BitCost = [BitCost(1), BitCost(2), BitCost(3)].into_iter().sum();
        assert_eq!(total, BitCost(6));
        assert_eq!(
            BitCost(u64::MAX).saturating_add(BitCost(1)),
            BitCost(u64::MAX)
        );
        assert_eq!(BitCost(7).to_string(), "7 bits");
        assert_eq!(BitCost::from(9u64).get(), 9);
    }

    #[test]
    fn accumulate_at_the_u64_boundary() {
        let mut c = BitCost(u64::MAX - 1);
        c.accumulate(BitCost(1));
        assert_eq!(c, BitCost(u64::MAX), "exact addition up to the ceiling");
        // Past the ceiling the release policy saturates; the debug
        // policy panics (covered by the `should_panic` test below).
        #[cfg(not(debug_assertions))]
        {
            c.accumulate(BitCost(1));
            assert_eq!(c, BitCost(u64::MAX));
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "BitCost overflow")]
    fn accumulate_overflow_panics_in_debug() {
        let mut c = BitCost(u64::MAX);
        c.accumulate(BitCost(1));
    }
}
