//! Distributed C₄ detection — the 4-vertex `H`-freeness direction of
//! Fraigniaud et al. (the paper's \[19\]), in our simulator.
//!
//! One iteration costs four rounds, chaining probes along a path:
//!
//! 1. `v` draws two distinct neighbors `a, b` and sends `b`'s name to
//!    `a` (remembering the pair);
//! 2. `a` forwards the name to a random neighbor `x ≠ v` (remembering
//!    `(v, x, b)`; at most two forwards per round keep the edge cap);
//! 3. `x` replies to `a` whether `b ∈ N(x)`;
//! 4. a positive reply at `a` certifies the 4-cycle `v–a–x–b–v`
//!    (edges `(v,a)`, `(a,x)`, `(x,b)`, `(b,v)` all witnessed).
//!
//! Like its triangle sibling this is one-sided: reported cycles are
//! validated edge-by-edge by the caller.

use crate::message::Msg;
use crate::network::{Network, Outbox, VertexProgram};
use triad_comm::SharedRandomness;
use triad_graph::{Edge, Graph, Triangle, VertexId};

/// The C₄ probe program.
#[derive(Debug, Clone, Copy, Default)]
pub struct C4Program;

/// Per-vertex state for the probe chain.
#[derive(Debug, Default)]
pub struct C4State {
    neighbors_sorted: Vec<VertexId>,
    /// As the origin `v`: the (a, b) pair probed this iteration.
    origin_pending: Option<(VertexId, VertexId)>,
    /// As the middle `a`: forwarded probes awaiting replies, as
    /// (origin v, forwarded-to x, named b).
    middle_pending: Vec<(VertexId, VertexId, VertexId)>,
    /// A certified 4-cycle `[v, a, x, b]`, if any.
    pub found: Option<[VertexId; 4]>,
}

impl VertexProgram for C4Program {
    type State = C4State;

    fn init(&self, _v: VertexId, neighbors: &[VertexId]) -> C4State {
        C4State {
            neighbors_sorted: neighbors.to_vec(),
            ..C4State::default()
        }
    }

    fn round(
        &self,
        state: &mut C4State,
        v: VertexId,
        neighbors: &[VertexId],
        round: usize,
        inbox: &[(VertexId, Msg)],
        shared: &SharedRandomness,
        out: &mut Outbox,
    ) -> Option<Triangle> {
        match round % 4 {
            0 => {
                // Step 1: originate a probe.
                state.origin_pending = None;
                state.middle_pending.clear();
                if neighbors.len() >= 2 {
                    let iteration = (round / 4) as u64;
                    let tag = 0x4334_5052 ^ iteration.wrapping_mul(0x9E37_79B9);
                    let i = (shared.value(tag, u64::from(v.0)) % neighbors.len() as u64) as usize;
                    let mut j = (shared.value(tag.wrapping_add(1), u64::from(v.0))
                        % (neighbors.len() as u64 - 1)) as usize;
                    if j >= i {
                        j += 1;
                    }
                    state.origin_pending = Some((neighbors[i], neighbors[j]));
                    out.send(neighbors[i], Msg::Probe(neighbors[j]));
                }
            }
            1 => {
                // Step 2: forward up to two probes to random neighbors,
                // avoiding the origin (a 4-cycle needs x ≠ v) and never
                // reusing a target edge within the round (one message
                // per edge per round keeps the bandwidth cap).
                let iteration = (round / 4) as u64;
                let tag = 0x4334_4657 ^ iteration.wrapping_mul(0x517C_C1B7);
                let mut used_targets: Vec<VertexId> = Vec::new();
                for (slot, (from, msg)) in inbox.iter().enumerate().take(2) {
                    if let Msg::Probe(b) = msg {
                        let candidates: Vec<VertexId> = neighbors
                            .iter()
                            .copied()
                            .filter(|x| x != from && x != b && !used_targets.contains(x))
                            .collect();
                        if candidates.is_empty() {
                            continue;
                        }
                        let idx = (shared.value(tag.wrapping_add(slot as u64), u64::from(v.0))
                            % candidates.len() as u64) as usize;
                        let x = candidates[idx];
                        used_targets.push(x);
                        state.middle_pending.push((*from, x, *b));
                        out.send(x, Msg::Probe(*b));
                    }
                }
            }
            2 => {
                // Step 3: answer adjacency queries — at most one reply per
                // querying edge per round (extra probes on the same edge
                // cannot occur; extra probes from distinct middles use
                // distinct edges).
                let mut answered: Vec<VertexId> = Vec::new();
                for (from, msg) in inbox {
                    if let Msg::Probe(b) = msg {
                        if answered.contains(from) {
                            continue;
                        }
                        answered.push(*from);
                        let hit = state.neighbors_sorted.binary_search(b).is_ok();
                        out.send(*from, Msg::ProbeReply(*b, hit));
                    }
                }
            }
            _ => {
                // Step 4: positive replies certify cycles at the middle.
                for (from_x, msg) in inbox {
                    if let Msg::ProbeReply(b, true) = msg {
                        if let Some((origin, x, named)) = state
                            .middle_pending
                            .iter()
                            .find(|(_, x, named)| x == from_x && named == b)
                        {
                            let cycle = [*origin, v, *x, *named];
                            // Distinctness: origin ≠ x by construction,
                            // b ≠ x and b ≠ v by forwarding filter; b
                            // could equal origin (triangle, not C4) —
                            // reject that.
                            if *named != *origin {
                                state.found = Some(cycle);
                            }
                        }
                    }
                }
            }
        }
        None
    }
}

/// The result of a C₄ search.
#[derive(Debug, Clone)]
pub struct C4Outcome {
    /// A verified 4-cycle `[v, a, x, b]`, if found.
    pub cycle: Option<[VertexId; 4]>,
    /// Rounds executed.
    pub rounds: usize,
    /// Total bits.
    pub total_bits: u64,
}

/// Runs `iterations` probe iterations (4 rounds each) and returns the
/// first verified 4-cycle found anywhere.
///
/// # Example
///
/// ```
/// use triad_congest::c4::detect_c4;
/// use triad_graph::Graph;
///
/// let square = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
/// // A few iterations almost surely catch the lone 4-cycle.
/// let found = (0..10).any(|seed| detect_c4(&square, 20, seed).cycle.is_some());
/// assert!(found);
/// ```
pub fn detect_c4(g: &Graph, iterations: usize, seed: u64) -> C4Outcome {
    let mut net = Network::new(g, seed);
    let rounds = 4 * iterations;
    let (states, outcome) = net.run_collect(&C4Program, rounds);
    let mut cycle = None;
    for s in &states {
        if let Some(c) = s.found {
            let [v, a, x, b] = c;
            let edges = [
                Edge::new(v, a),
                Edge::new(a, x),
                Edge::new(x, b),
                Edge::new(b, v),
            ];
            assert!(
                edges.iter().all(|e| g.has_edge(*e)),
                "certified cycle {c:?} has a missing edge"
            );
            let distinct: std::collections::HashSet<_> = c.iter().collect();
            assert_eq!(distinct.len(), 4, "cycle vertices must be distinct");
            cycle = Some(c);
            break;
        }
    }
    C4Outcome {
        cycle,
        rounds: outcome.rounds,
        total_bits: outcome.total_bits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triad_graph::subgraphs::{is_free_of, Pattern};

    #[test]
    fn finds_a_plain_four_cycle() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        let mut found = 0;
        for seed in 0..10 {
            if detect_c4(&g, 20, seed).cycle.is_some() {
                found += 1;
            }
        }
        assert!(found >= 8, "C4 found in only {found}/10 runs");
    }

    #[test]
    fn silent_on_c4_free_graphs() {
        // Trees and triangles are C4-free (non-induced C4 needs a real
        // 4-cycle).
        for g in [
            Graph::from_edges(8, [(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (2, 6), (6, 7)]),
            Graph::from_edges(3, [(0, 1), (1, 2), (0, 2)]),
        ] {
            assert!(is_free_of(&g, &Pattern::cycle(4)));
            for seed in 0..5 {
                assert!(detect_c4(&g, 25, seed).cycle.is_none());
            }
        }
    }

    #[test]
    fn finds_planted_c4s_in_noise() {
        // A cycle-rich bipartite block plus pendant noise.
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        for i in 0..6u32 {
            for j in 0..6u32 {
                pairs.push((i, 6 + j)); // K_{6,6}: many C4s
            }
        }
        for i in 12..40u32 {
            pairs.push((i, i + 1));
        }
        let g = Graph::from_edges(42, pairs);
        let mut found = 0;
        for seed in 0..10 {
            if detect_c4(&g, 30, seed).cycle.is_some() {
                found += 1;
            }
        }
        assert!(found >= 8, "K6,6 C4s found in only {found}/10 runs");
    }

    #[test]
    fn respects_bandwidth_via_forward_cap() {
        // A hub receiving many probes must not exceed the per-edge cap;
        // run on a dense graph and rely on the simulator's assertion.
        let mut pairs = Vec::new();
        for a in 0..16u32 {
            for b in (a + 1)..16 {
                pairs.push((a, b));
            }
        }
        let g = Graph::from_edges(16, pairs);
        let out = detect_c4(&g, 10, 3);
        assert!(out.cycle.is_some(), "K16 brims with C4s");
        assert!(out.total_bits > 0);
    }
}
