//! CONGEST messages: `O(log n)` bits per edge per round.

use triad_comm::bits::{bits_per_vertex, BitCost};
use triad_graph::VertexId;

/// A message small enough for one CONGEST slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Msg {
    /// "Is this vertex your neighbor?" — carries one vertex id.
    Probe(VertexId),
    /// Answer to a probe: the queried vertex id plus one bit.
    ProbeReply(VertexId, bool),
    /// A single control bit.
    Flag(bool),
}

impl Msg {
    /// Exact bit cost in a graph on `n` vertices.
    pub fn bit_len(&self, n: usize) -> BitCost {
        let v = bits_per_vertex(n);
        BitCost(match self {
            Msg::Probe(_) => v,
            Msg::ProbeReply(_, _) => v + 1,
            Msg::Flag(_) => 1,
        })
    }

    /// The CONGEST bandwidth cap: `c·⌈log₂ n⌉` bits per edge per round
    /// (we fix `c = 2`, enough for any [`Msg`]).
    pub fn bandwidth_cap(n: usize) -> u64 {
        2 * bits_per_vertex(n)
    }

    /// Returns `true` if this message fits one CONGEST slot.
    pub fn fits(&self, n: usize) -> bool {
        self.bit_len(n).get() <= Self::bandwidth_cap(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn costs_and_cap() {
        let n = 1024; // 10-bit ids
        assert_eq!(Msg::Probe(VertexId(3)).bit_len(n), BitCost(10));
        assert_eq!(Msg::ProbeReply(VertexId(3), true).bit_len(n), BitCost(11));
        assert_eq!(Msg::Flag(false).bit_len(n), BitCost(1));
        assert_eq!(Msg::bandwidth_cap(n), 20);
        for m in [
            Msg::Probe(VertexId(0)),
            Msg::ProbeReply(VertexId(0), false),
            Msg::Flag(true),
        ] {
            assert!(m.fits(n));
        }
    }
}
