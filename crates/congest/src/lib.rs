//! # triad-congest
//!
//! A synchronous CONGEST-model simulator and the distributed
//! triangle-freeness tester that motivates the paper (§1's pointer to
//! Censor-Hillel–Fischer–Schwartzman–Vasudev, who test
//! triangle-freeness in `O(1/ε²)` CONGEST rounds).
//!
//! In the CONGEST model every *vertex* of the input graph is a
//! processor; computation proceeds in synchronous rounds, and in each
//! round a vertex may send one `O(log n)`-bit message over each incident
//! edge. The simulator enforces the bandwidth cap per edge per round and
//! accounts rounds and bits; [`triangle::TriangleTester`] implements the
//! neighbor-probe tester, whose round budget scales as `Θ(1/ε²)` on
//! ε-far inputs — the shape [`network::Network::run_until`] experiments measure.
//!
//! The communication-complexity connection (the reason this crate lives
//! here): lower bounds for CONGEST property testing are exactly what the
//! paper's multiparty bounds are a first step toward (§1).
//!
//! # Example
//!
//! ```
//! use triad_congest::{network::Network, triangle::TriangleTester};
//! use triad_graph::Graph;
//!
//! let g = Graph::from_edges(4, [(0, 1), (1, 2), (0, 2), (2, 3)]);
//! let mut net = Network::new(&g, 42);
//! let tester = TriangleTester::new();
//! let outcome = net.run_until(&tester, 50);
//! assert!(outcome.witness.is_some());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod c4;
pub mod counting;
pub mod message;
pub mod network;
pub mod triangle;
