//! Distributed triangle counting by probe statistics.
//!
//! Run the neighbor-probe schedule of [`crate::triangle`] for `I`
//! iterations, but instead of stopping at the first closed vee, every
//! vertex counts its probe *hits*. A probe at `v` draws a uniform pair
//! of `v`'s neighbors, and the pair closes with probability
//! `t_v / C(d_v, 2)` where `t_v` is the number of triangles containing
//! `v` — so `t̂_v = hits_v · C(d_v, 2) / I` is unbiased, and
//! `T̂ = Σ_v t̂_v / 3` estimates the global count (each triangle is seen
//! from its three corners). The bit cost is one probe + one reply per
//! vertex per iteration, all within the CONGEST cap.

use crate::message::Msg;
use crate::network::{Network, Outbox, VertexProgram};
use triad_comm::SharedRandomness;
use triad_graph::{Graph, Triangle, VertexId};

/// The probe-statistics counting program.
#[derive(Debug, Clone, Copy, Default)]
pub struct TriangleCountProgram;

/// Per-vertex counting state.
#[derive(Debug, Default)]
pub struct CountState {
    neighbors_sorted: Vec<VertexId>,
    /// Hits among probes *this vertex issued* (replies received).
    hits: u64,
    /// Probes issued.
    probes: u64,
    /// Pending probe: the pair (receiver, named vertex) awaiting a reply.
    pending: Option<(VertexId, VertexId)>,
}

impl CountState {
    /// The unbiased per-vertex triangle estimate `hits·C(d,2)/probes`.
    pub fn estimate(&self, degree: usize) -> f64 {
        if self.probes == 0 {
            return 0.0;
        }
        let pairs = (degree * degree.saturating_sub(1) / 2) as f64;
        self.hits as f64 * pairs / self.probes as f64
    }
}

impl VertexProgram for TriangleCountProgram {
    type State = CountState;

    fn init(&self, _v: VertexId, neighbors: &[VertexId]) -> CountState {
        CountState {
            neighbors_sorted: neighbors.to_vec(),
            ..CountState::default()
        }
    }

    fn round(
        &self,
        state: &mut CountState,
        v: VertexId,
        neighbors: &[VertexId],
        round: usize,
        inbox: &[(VertexId, Msg)],
        shared: &SharedRandomness,
        out: &mut Outbox,
    ) -> Option<Triangle> {
        if round.is_multiple_of(2) {
            // Probe round: issue one probe, and also harvest replies to
            // the previous iteration's probes (delivered this round).
            for (_, msg) in inbox {
                if let Msg::ProbeReply(_, hit) = msg {
                    if *hit {
                        state.hits += 1;
                    }
                }
            }
            if neighbors.len() >= 2 {
                let iteration = (round / 2) as u64;
                let tag = 0x434E_5447 ^ iteration.wrapping_mul(0x9E37_79B9);
                let i = (shared.value(tag, u64::from(v.0)) % neighbors.len() as u64) as usize;
                let mut j = (shared.value(tag.wrapping_add(1), u64::from(v.0))
                    % (neighbors.len() as u64 - 1)) as usize;
                if j >= i {
                    j += 1;
                }
                state.pending = Some((neighbors[i], neighbors[j]));
                state.probes += 1;
                out.send(neighbors[i], Msg::Probe(neighbors[j]));
            }
            None
        } else {
            // Reply round: answer every probe with one bit.
            for (from, msg) in inbox {
                if let Msg::Probe(w) = msg {
                    let hit = state.neighbors_sorted.binary_search(w).is_ok();
                    out.send(*from, Msg::ProbeReply(*w, hit));
                }
            }
            None
        }
    }
}

/// The result of a distributed counting run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CountEstimate {
    /// The global estimate `T̂`.
    pub estimate: f64,
    /// Probe iterations performed.
    pub iterations: usize,
    /// Total bits across all edges and rounds.
    pub total_bits: u64,
}

/// Runs the counting program for `iterations` probe iterations
/// (2 rounds each, plus one drain round for the final replies) and
/// aggregates the per-vertex estimates.
///
/// # Example
///
/// ```
/// use triad_congest::counting::estimate_triangles;
/// use triad_graph::Graph;
///
/// // A single triangle: every probe closes, so the estimate is exact.
/// let g = Graph::from_edges(3, [(0, 1), (1, 2), (0, 2)]);
/// let est = estimate_triangles(&g, 4, 1);
/// assert!((est.estimate - 1.0).abs() < 1e-9);
/// ```
pub fn estimate_triangles(g: &Graph, iterations: usize, seed: u64) -> CountEstimate {
    let mut net = Network::new(g, seed);
    // One extra even round drains the last iteration's replies; the
    // probes it issues are never answered and never counted.
    let rounds = 2 * iterations + 1;
    let (mut states, outcome) = net.run_collect(&TriangleCountProgram, rounds);
    // Cancel the unanswered final probe from every vertex's tally.
    let mut total = 0.0;
    for v in g.vertices() {
        let s = &mut states[v.index()];
        if s.probes > 0 {
            s.probes -= 1; // the drained round's probe
        }
        total += s.estimate(g.degree(v));
    }
    CountEstimate {
        estimate: total / 3.0,
        iterations,
        total_bits: outcome.total_bits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triad_graph::triangles;

    fn clique(n: u32) -> Graph {
        let mut pairs = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                pairs.push((a, b));
            }
        }
        Graph::from_edges(n as usize, pairs)
    }

    #[test]
    fn exact_on_a_single_triangle() {
        // Every vertex has degree 2: the only pair always closes, so the
        // estimate is exact with any number of iterations.
        let g = clique(3);
        let est = estimate_triangles(&g, 4, 1);
        assert!(
            (est.estimate - 1.0).abs() < 1e-9,
            "estimate {}",
            est.estimate
        );
        assert!(est.total_bits > 0);
    }

    #[test]
    fn zero_on_triangle_free_graphs() {
        let g = Graph::from_edges(30, (0..29).map(|i| (i as u32, i as u32 + 1)));
        let est = estimate_triangles(&g, 20, 2);
        assert_eq!(est.estimate, 0.0);
    }

    #[test]
    fn concentrates_on_cliques_with_enough_iterations() {
        let g = clique(12);
        let truth = triangles::count_triangles(&g) as f64; // C(12,3) = 220
        let mut sum = 0.0;
        let runs = 10;
        for seed in 0..runs {
            sum += estimate_triangles(&g, 150, seed).estimate;
        }
        let mean = sum / runs as f64;
        let rel = (mean - truth).abs() / truth;
        assert!(rel < 0.2, "mean {mean} vs truth {truth} (rel {rel:.2})");
    }

    #[test]
    fn more_iterations_cost_more_bits() {
        let g = clique(8);
        let a = estimate_triangles(&g, 5, 1).total_bits;
        let b = estimate_triangles(&g, 50, 1).total_bits;
        assert!(
            b > 5 * a,
            "bits {a} → {b} should scale ~linearly in iterations"
        );
    }
}
