//! The synchronous CONGEST network simulator.

use crate::message::Msg;
use triad_comm::SharedRandomness;
use triad_graph::{Graph, Triangle, VertexId};

/// What a vertex program does each round.
pub trait VertexProgram {
    /// Per-vertex state.
    type State;

    /// Initializes vertex `v`'s state from its local view (its id and
    /// neighbor list — exactly what a CONGEST node knows at time 0).
    fn init(&self, v: VertexId, neighbors: &[VertexId]) -> Self::State;

    /// One round for vertex `v`: consume the inbox (messages delivered
    /// this round with their senders), emit an outbox (neighbor →
    /// message). Returning a witness triangle anywhere ends the run.
    #[allow(clippy::too_many_arguments)]
    fn round(
        &self,
        state: &mut Self::State,
        v: VertexId,
        neighbors: &[VertexId],
        round: usize,
        inbox: &[(VertexId, Msg)],
        shared: &SharedRandomness,
        out: &mut Outbox,
    ) -> Option<Triangle>;
}

/// A vertex's outgoing messages for one round.
#[derive(Debug, Default)]
pub struct Outbox {
    sends: Vec<(VertexId, Msg)>,
}

impl Outbox {
    /// Queues `msg` for neighbor `to` (validated against the topology
    /// and the bandwidth cap at delivery).
    pub fn send(&mut self, to: VertexId, msg: Msg) {
        self.sends.push((to, msg));
    }
}

/// The outcome of one network execution.
#[derive(Debug, Clone)]
pub struct CongestOutcome {
    /// A witness triangle, if any vertex found one.
    pub witness: Option<Triangle>,
    /// Rounds executed.
    pub rounds: usize,
    /// Total bits sent over all edges and rounds.
    pub total_bits: u64,
    /// The largest single-edge, single-round load observed (must respect
    /// the cap — the simulator panics otherwise).
    pub max_edge_round_bits: u64,
}

/// A synchronous network over a fixed topology.
#[derive(Debug)]
pub struct Network<'g> {
    graph: &'g Graph,
    shared: SharedRandomness,
}

impl<'g> Network<'g> {
    /// A network over `graph` with public randomness from `seed`.
    ///
    /// (CONGEST vertices usually use private coins; public coins only
    /// strengthen lower-bound discussions and simplify reproducibility —
    /// each vertex derives its stream from `(seed, v)`.)
    pub fn new(graph: &'g Graph, seed: u64) -> Self {
        Network {
            graph,
            shared: SharedRandomness::new(seed),
        }
    }

    /// Runs `program` for at most `max_rounds` rounds, stopping early as
    /// soon as any vertex returns a witness.
    ///
    /// # Panics
    ///
    /// Panics if a program sends to a non-neighbor or exceeds the
    /// per-edge-per-round bandwidth cap — both are model violations, not
    /// recoverable conditions.
    pub fn run_until<P: VertexProgram>(
        &mut self,
        program: &P,
        max_rounds: usize,
    ) -> CongestOutcome {
        let g = self.graph;
        let n = g.vertex_count();
        let mut states: Vec<P::State> = g
            .vertices()
            .map(|v| program.init(v, g.neighbors(v)))
            .collect();
        let mut inboxes: Vec<Vec<(VertexId, Msg)>> = vec![Vec::new(); n];
        let mut total_bits = 0u64;
        let mut max_edge_round = 0u64;
        for round in 0..max_rounds {
            let mut next_inboxes: Vec<Vec<(VertexId, Msg)>> = vec![Vec::new(); n];
            let mut witness = None;
            // Per-edge-per-round load for cap enforcement (directed).
            let mut load: std::collections::HashMap<(VertexId, VertexId), u64> =
                std::collections::HashMap::new();
            for v in g.vertices() {
                let mut out = Outbox::default();
                let found = program.round(
                    &mut states[v.index()],
                    v,
                    g.neighbors(v),
                    round,
                    &inboxes[v.index()],
                    &self.shared,
                    &mut out,
                );
                if let Some(t) = found {
                    assert!(t.exists_in(g), "program reported a fake triangle");
                    witness.get_or_insert(t);
                }
                for (to, msg) in out.sends {
                    assert!(
                        g.neighbors(v).binary_search(&to).is_ok(),
                        "vertex {v} sent to non-neighbor {to}"
                    );
                    let bits = msg.bit_len(n).get();
                    let slot = load.entry((v, to)).or_insert(0);
                    *slot += bits;
                    assert!(
                        *slot <= Msg::bandwidth_cap(n),
                        "bandwidth cap exceeded on edge {v}->{to}"
                    );
                    max_edge_round = max_edge_round.max(*slot);
                    total_bits += bits;
                    next_inboxes[to.index()].push((v, msg));
                }
            }
            if witness.is_some() {
                return CongestOutcome {
                    witness,
                    rounds: round + 1,
                    total_bits,
                    max_edge_round_bits: max_edge_round,
                };
            }
            inboxes = next_inboxes;
        }
        CongestOutcome {
            witness: None,
            rounds: max_rounds,
            total_bits,
            max_edge_round_bits: max_edge_round,
        }
    }

    /// Runs `program` for exactly `rounds` rounds (no early exit) and
    /// returns the final per-vertex states alongside the outcome — the
    /// simulator-side stand-in for a final convergecast, used by
    /// aggregate algorithms like distributed counting.
    pub fn run_collect<P: VertexProgram>(
        &mut self,
        program: &P,
        rounds: usize,
    ) -> (Vec<P::State>, CongestOutcome) {
        let g = self.graph;
        let n = g.vertex_count();
        let mut states: Vec<P::State> = g
            .vertices()
            .map(|v| program.init(v, g.neighbors(v)))
            .collect();
        let mut inboxes: Vec<Vec<(VertexId, Msg)>> = vec![Vec::new(); n];
        let mut total_bits = 0u64;
        let mut max_edge_round = 0u64;
        let mut witness = None;
        for round in 0..rounds {
            let mut next_inboxes: Vec<Vec<(VertexId, Msg)>> = vec![Vec::new(); n];
            let mut load: std::collections::HashMap<(VertexId, VertexId), u64> =
                std::collections::HashMap::new();
            for v in g.vertices() {
                let mut out = Outbox::default();
                if let Some(t) = program.round(
                    &mut states[v.index()],
                    v,
                    g.neighbors(v),
                    round,
                    &inboxes[v.index()],
                    &self.shared,
                    &mut out,
                ) {
                    assert!(t.exists_in(g), "program reported a fake triangle");
                    witness.get_or_insert(t);
                }
                for (to, msg) in out.sends {
                    assert!(
                        g.neighbors(v).binary_search(&to).is_ok(),
                        "vertex {v} sent to non-neighbor {to}"
                    );
                    let bits = msg.bit_len(n).get();
                    let slot = load.entry((v, to)).or_insert(0);
                    *slot += bits;
                    assert!(
                        *slot <= Msg::bandwidth_cap(n),
                        "bandwidth cap exceeded on edge {v}->{to}"
                    );
                    max_edge_round = max_edge_round.max(*slot);
                    total_bits += bits;
                    next_inboxes[to.index()].push((v, msg));
                }
            }
            inboxes = next_inboxes;
        }
        (
            states,
            CongestOutcome {
                witness,
                rounds,
                total_bits,
                max_edge_round_bits: max_edge_round,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triad_graph::Graph;

    /// Flood a flag outward; never finds anything.
    struct Flood;

    impl VertexProgram for Flood {
        type State = ();

        fn init(&self, _v: VertexId, _neighbors: &[VertexId]) {}

        fn round(
            &self,
            _state: &mut (),
            _v: VertexId,
            neighbors: &[VertexId],
            round: usize,
            inbox: &[(VertexId, Msg)],
            _shared: &SharedRandomness,
            out: &mut Outbox,
        ) -> Option<Triangle> {
            if round == 0 || !inbox.is_empty() {
                for u in neighbors {
                    out.send(*u, Msg::Flag(true));
                }
            }
            None
        }
    }

    #[test]
    fn flood_respects_caps_and_counts_bits() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let mut net = Network::new(&g, 1);
        let out = net.run_until(&Flood, 3);
        assert!(out.witness.is_none());
        assert_eq!(out.rounds, 3);
        // Every vertex floods every round (path stays active): 2·3 = 6
        // directed edge-slots per round × 1 bit × 3 rounds.
        assert_eq!(out.total_bits, 18);
        assert!(out.max_edge_round_bits <= Msg::bandwidth_cap(4));
    }

    /// Sends to a non-neighbor: must panic.
    struct Rogue;

    impl VertexProgram for Rogue {
        type State = ();

        fn init(&self, _v: VertexId, _neighbors: &[VertexId]) {}

        fn round(
            &self,
            _state: &mut (),
            v: VertexId,
            _neighbors: &[VertexId],
            _round: usize,
            _inbox: &[(VertexId, Msg)],
            _shared: &SharedRandomness,
            out: &mut Outbox,
        ) -> Option<Triangle> {
            if v == VertexId(0) {
                out.send(VertexId(3), Msg::Flag(true));
            }
            None
        }
    }

    #[test]
    #[should_panic(expected = "non-neighbor")]
    fn topology_violations_panic() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let mut net = Network::new(&g, 1);
        let _ = net.run_until(&Rogue, 1);
    }
}
