//! The distributed triangle tester (after Censor-Hillel et al., the
//! paper's \[10\]).
//!
//! Each *iteration* costs two rounds:
//!
//! 1. every vertex `v` of degree ≥ 2 draws two distinct random neighbors
//!    `u, w` and sends `Probe(w)` to `u`;
//! 2. `u` checks `w ∈ N(u)`; a hit certifies the triangle `{v, u, w}`.
//!
//! One probe per edge per round: the bandwidth cap holds by
//! construction. On a graph that is ε-far from triangle-free, a
//! constant fraction of probes are vees with positive closing
//! probability, so `Θ(1/ε²)` iterations suffice for constant success —
//! the `O(1/ε²)`-round claim this crate's experiment measures the shape
//! of.

use crate::message::Msg;
use crate::network::{Outbox, VertexProgram};
use triad_comm::SharedRandomness;
use triad_graph::{Triangle, VertexId};

/// The two-rounds-per-iteration neighbor-probe tester.
#[derive(Debug, Clone, Copy, Default)]
pub struct TriangleTester;

impl TriangleTester {
    /// A tester with the default probing schedule.
    pub fn new() -> Self {
        TriangleTester
    }
}

/// Per-vertex state: nothing persists between iterations.
#[derive(Debug, Default)]
pub struct TesterState {
    neighbors_sorted: Vec<VertexId>,
}

impl VertexProgram for TriangleTester {
    type State = TesterState;

    fn init(&self, _v: VertexId, neighbors: &[VertexId]) -> TesterState {
        TesterState {
            neighbors_sorted: neighbors.to_vec(),
        }
    }

    fn round(
        &self,
        state: &mut TesterState,
        v: VertexId,
        neighbors: &[VertexId],
        round: usize,
        inbox: &[(VertexId, Msg)],
        shared: &SharedRandomness,
        out: &mut Outbox,
    ) -> Option<Triangle> {
        if round.is_multiple_of(2) {
            // Probe round: draw two distinct random neighbors.
            if neighbors.len() >= 2 {
                let iteration = (round / 2) as u64;
                let tag = 0x434F_4E47 ^ iteration.wrapping_mul(0x9E37_79B9);
                let i = (shared.value(tag, u64::from(v.0)) % neighbors.len() as u64) as usize;
                let mut j = (shared.value(tag.wrapping_add(1), u64::from(v.0))
                    % (neighbors.len() as u64 - 1)) as usize;
                if j >= i {
                    j += 1;
                }
                out.send(neighbors[i], Msg::Probe(neighbors[j]));
            }
            None
        } else {
            // Reply round: close any probe that names one of our neighbors.
            for (from, msg) in inbox {
                if let Msg::Probe(w) = msg {
                    if state.neighbors_sorted.binary_search(w).is_ok() {
                        return Some(Triangle::new(v, *from, *w));
                    }
                }
            }
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use triad_graph::generators::far_graph;
    use triad_graph::Graph;

    #[test]
    fn finds_triangle_in_small_clique() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (0, 2)]);
        let mut net = Network::new(&g, 5);
        let out = net.run_until(&TriangleTester::new(), 10);
        let t = out.witness.expect("a triangle is every vee's closure here");
        assert!(t.exists_in(&g));
        assert!(out.rounds <= 2, "the first iteration must hit");
    }

    #[test]
    fn never_errs_on_triangle_free_graphs() {
        let g = Graph::from_edges(50, (0..49).map(|i| (i as u32, i as u32 + 1)));
        for seed in 0..5 {
            let mut net = Network::new(&g, seed);
            let out = net.run_until(&TriangleTester::new(), 40);
            assert!(out.witness.is_none());
            assert_eq!(out.rounds, 40);
        }
    }

    #[test]
    fn finds_planted_triangles_fast_on_far_graphs() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = far_graph(300, 6.0, 0.2, &mut rng).unwrap();
        let mut found = 0;
        let mut round_sum = 0usize;
        for seed in 0..10 {
            let mut net = Network::new(&g, seed);
            let out = net.run_until(&TriangleTester::new(), 200);
            if let Some(t) = out.witness {
                assert!(t.exists_in(&g));
                found += 1;
                round_sum += out.rounds;
            }
        }
        assert!(found >= 8, "far graph detected only {found}/10 times");
        assert!(
            round_sum / found.max(1) <= 30,
            "mean rounds {} too high for a 0.2-far input",
            round_sum / found.max(1)
        );
    }

    #[test]
    fn respects_bandwidth_cap_on_dense_graphs() {
        let mut pairs = Vec::new();
        for a in 0..20u32 {
            for b in (a + 1)..20 {
                pairs.push((a, b));
            }
        }
        let g = Graph::from_edges(20, pairs);
        let mut net = Network::new(&g, 3);
        let out = net.run_until(&TriangleTester::new(), 4);
        assert!(out.witness.is_some());
        assert!(out.max_edge_round_bits <= Msg::bandwidth_cap(20));
    }

    #[test]
    fn probe_draws_distinct_neighbors() {
        // A star has no triangles, but every probe must still name a
        // neighbor different from the receiver.
        let g = Graph::from_edges(6, [(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
        let mut net = Network::new(&g, 9);
        let out = net.run_until(&TriangleTester::new(), 20);
        assert!(out.witness.is_none());
        assert!(out.total_bits > 0, "the hub must have probed");
    }
}
