//! A tour of the §4 lower-bound constructions.
//!
//! 1. Sample the hard tripartite distribution μ and certify Lemma 4.5
//!    (a sample is Ω(1)-far with probability ≥ 1/2).
//! 2. Sweep budget-limited sketch protocols on μ and watch the success
//!    probability collapse — the empirical face of the Ω((nd)^{1/3})
//!    simultaneous bound.
//! 3. Run the Boolean-Matching reduction for degree Θ(1) and locate the
//!    birthday-paradox threshold at Θ(√n) revealed coordinates.
//!
//! ```text
//! cargo run --example hard_instances
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use triad::graph::generators::TripartiteMu;
use triad::lowerbounds::{adversary, bhm, mu};

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(99);

    // --- Lemma 4.5 -----------------------------------------------------
    let part = 96;
    let gamma = 1.2;
    let dist = TripartiteMu::new(part, gamma);
    let report = mu::verify_farness(&dist, 0.05, 20, &mut rng);
    println!("μ (parts of {part}, γ = {gamma}):");
    println!(
        "  certified 0.05-far in {:.0}% of samples (Lemma 4.5 promises ≥ 50%)",
        100.0 * report.far_fraction
    );
    println!(
        "  mean edges {:.0}, mean disjoint-triangle packing {:.1}\n",
        report.mean_edges, report.mean_packing
    );

    // --- Budget sweeps on μ ---------------------------------------------
    let budgets = [8usize, 32, 128, 512, 2048];
    println!("triangle-edge task on μ — success rate vs per-player budget (edges):");
    println!("  budget    uniform-sketch   targeted-sketch   one-way-vee");
    let trials = 20;
    let uni = adversary::sweep(
        &dist,
        &budgets,
        trials,
        &mut rng,
        adversary::uniform_sketch_attempt,
    );
    let tgt = adversary::sweep(
        &dist,
        &budgets,
        trials,
        &mut rng,
        adversary::targeted_sketch_attempt,
    );
    let ow = adversary::sweep(
        &dist,
        &budgets,
        trials,
        &mut rng,
        adversary::one_way_vee_attempt,
    );
    for i in 0..budgets.len() {
        println!(
            "  {:>6}        {:>6.2}           {:>6.2}          {:>6.2}",
            budgets[i], uni[i].success_rate, tgt[i].success_rate, ow[i].success_rate
        );
    }
    println!(
        "  (the Ω((nd)^⅓) bound says no one-round protocol can push the knee below ≈ {:.0} edges)\n",
        (3.0 * part as f64 * 2.0 * gamma * (part as f64).sqrt()).cbrt()
    );

    // --- Boolean Matching, d = Θ(1) --------------------------------------
    let pairs = 512;
    let budgets = [8usize, 16, 32, 45, 64, 128, 256];
    println!("Boolean-Matching reduction (n = {pairs} pairs, degree Θ(1) graphs):");
    println!("  revealed   informed-rate   predicted   success");
    let pts = bhm::sweep(pairs, &budgets, 60, &mut rng);
    for p in &pts {
        println!(
            "  {:>8}      {:>6.2}        {:>6.2}     {:>6.2}",
            p.budget,
            p.informed_rate,
            bhm::predicted_informed_rate(pairs, p.budget),
            p.success_rate
        );
    }
    println!(
        "  knee at ≈ 2√n = {:.0} revealed coordinates — the Ω(√n) bound is tight here",
        2.0 * (pairs as f64).sqrt()
    );
}
