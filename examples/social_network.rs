//! A sharded social-graph audit — the paper's motivating setting.
//!
//! A "conflict graph" is split across `k` datacenter shards: every shard
//! holds the edges it observed, with overlap (the same interaction is
//! often logged twice). A central auditor wants to know whether the graph
//! is triangle-free or riddled with triangles — without shipping the
//! shards anywhere.
//!
//! The instance is adversarial in exactly the way §3.4.2 warns about: a
//! handful of celebrity accounts (high-degree hubs) source essentially
//! all triangles, so uniformly sampled vertices are useless; the bucketed
//! search and AlgLow's hub set `S` are what save the day.
//!
//! ```text
//! cargo run --example social_network
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use triad::graph::generators::dense_core;
use triad::graph::partition::with_duplication;
use triad::protocols::baseline::run_send_everything;
use triad::protocols::{SimProtocolKind, SimultaneousTester, Tuning, UnrestrictedTester};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 4000;
    let hubs = 6;
    let k = 8;
    let epsilon = 0.2;
    let mut rng = ChaCha8Rng::seed_from_u64(7);

    let dc = dense_core(n, hubs, &mut rng)?;
    let g = dc.graph();
    println!(
        "conflict graph: n = {n}, |E| = {}, {} celebrity hubs of degree ≈ {}",
        g.edge_count(),
        hubs,
        g.degree(dc.hubs()[0])
    );
    // Shards overlap: 20% duplication on top of random ownership.
    let parts = with_duplication(g, k, 0.2, &mut rng);
    println!(
        "sharded over k = {k} datacenters, {} edge copies for {} edges\n",
        parts.total_copies(),
        g.edge_count()
    );

    let tuning = Tuning::practical(epsilon);

    // Interactive audit.
    let run = UnrestrictedTester::new(tuning).run(g, &parts, 11)?;
    match run.outcome.triangle() {
        Some(t) => println!(
            "interactive audit: conflict triangle {t} exposed with {} bits ({} rounds)",
            run.stats.total_bits, run.stats.rounds
        ),
        None => println!("interactive audit: accepted (unexpected on this input)"),
    }

    // One-round audit without telling anyone the density.
    let sim = SimultaneousTester::new(tuning, SimProtocolKind::Oblivious).run(g, &parts, 12)?;
    match sim.outcome.triangle() {
        Some(t) => println!(
            "one-round oblivious audit: triangle {t} with {} bits (max shard message {} bits)",
            sim.stats.total_bits, sim.stats.max_player_sent_bits
        ),
        None => println!("one-round oblivious audit: accepted (missed this time — one-sided)"),
    }

    // What shipping everything would have cost.
    let exact = run_send_everything(g, &parts, 13)?;
    println!(
        "naive full shipment: {} bits — {}× the interactive audit",
        exact.stats.total_bits,
        exact.stats.total_bits / run.stats.total_bits.max(1)
    );
    Ok(())
}
