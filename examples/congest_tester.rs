//! The distributed (CONGEST) triangle tester — the setting that
//! motivates the paper's communication-complexity program (§1).
//!
//! Every vertex of the graph is a processor; per round, one O(log n)-bit
//! message per edge. The tester probes random neighbor pairs and closes
//! vees locally; the simulator enforces the bandwidth cap and verifies
//! every reported witness.
//!
//! ```text
//! cargo run --example congest_tester
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use triad::congest::message::Msg;
use triad::congest::network::Network;
use triad::congest::triangle::TriangleTester;
use triad::graph::generators::{dense_core, far_graph};
use triad::graph::Graph;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = ChaCha8Rng::seed_from_u64(5);

    println!("CONGEST neighbor-probe tester (2 rounds per iteration):\n");

    // A 0.2-far planted graph: triangles everywhere, first iteration hits.
    let g = far_graph(2000, 8.0, 0.2, &mut rng)?;
    run_and_report("0.2-far planted graph (n=2000, d=8)", &g);

    // The dense-core instance: triangles only through a few hubs — the
    // hubs' probes close almost surely, so detection is still immediate.
    let dc = dense_core(2000, 5, &mut rng)?;
    run_and_report("dense-core adversary (5 hubs)", dc.graph());

    // Triangle-free control: the tester must stay silent forever.
    let path = Graph::from_edges(2000, (0..1999).map(|i| (i as u32, i as u32 + 1)));
    run_and_report("triangle-free path (control)", &path);
    Ok(())
}

fn run_and_report(name: &str, g: &Graph) {
    let mut net = Network::new(g, 42);
    let out = net.run_until(&TriangleTester::new(), 60);
    let cap = Msg::bandwidth_cap(g.vertex_count());
    match out.witness {
        Some(t) => println!(
            "{name}\n  → triangle {t} after {} rounds, {} total bits (edge cap {} bits/round, max used {})\n",
            out.rounds, out.total_bits, cap, out.max_edge_round_bits
        ),
        None => println!(
            "{name}\n  → accepted after {} rounds, {} total bits\n",
            out.rounds, out.total_bits
        ),
    }
}
