//! The same protocol, genuinely concurrent.
//!
//! Every protocol in `triad` draws its randomness from the shared public
//! string and none from scheduling, so running the players as real OS
//! threads (crossbeam channels to the coordinator) produces a transcript
//! bit-for-bit identical to the sequential reference runtime. This
//! example proves it on the unrestricted tester.
//!
//! ```text
//! cargo run --example distributed_threads
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use triad::comm::{CostModel, Runtime, SharedRandomness};
use triad::graph::generators::far_graph;
use triad::graph::partition::random_disjoint;
use triad::protocols::{Tuning, UnrestrictedTester};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let g = far_graph(600, 6.0, 0.2, &mut rng)?;
    let parts = random_disjoint(&g, 8, &mut rng);
    let tester = UnrestrictedTester::new(Tuning::practical(0.2));
    let shared = SharedRandomness::new(42);

    let mut local = Runtime::local(
        g.vertex_count(),
        parts.shares(),
        shared,
        CostModel::Coordinator,
    );
    let local_outcome = tester.run_on(&mut local);

    let mut threaded = Runtime::threaded(
        g.vertex_count(),
        parts.shares(),
        shared,
        CostModel::Coordinator,
    );
    let threaded_outcome = tester.run_on(&mut threaded);

    println!(
        "sequential runtime: {:?} — {} bits",
        local_outcome,
        local.stats().total_bits
    );
    println!(
        "threaded runtime:   {:?} — {} bits",
        threaded_outcome,
        threaded.stats().total_bits
    );
    assert_eq!(local_outcome, threaded_outcome, "verdicts must agree");
    assert_eq!(
        local.stats(),
        threaded.stats(),
        "transcripts must agree bit-for-bit"
    );
    println!(
        "transcripts identical across {} messages ✓",
        local.stats().messages
    );
    Ok(())
}
