//! The streaming connection (§4.2.2): a one-way communication protocol
//! *is* a small-space streaming algorithm, and vice versa.
//!
//! The input stream is the μ graph's edges in player order (Alice's
//! block, then Bob's, then Charlie's). The streaming algorithm keeps a
//! memory of at most `budget` edges/pairs; at the block boundaries its
//! memory is exactly the message of the corresponding one-way protocol.
//! A space lower bound therefore follows from the paper's Ω(n^{1/4})
//! one-way bound — and here we watch the natural √n-space algorithm
//! (Alice-sketch → Bob-join → Charlie-match) work, while smaller budgets
//! fail.
//!
//! ```text
//! cargo run --example streaming
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use triad::graph::generators::TripartiteMu;
use triad::lowerbounds::adversary::one_way_vee_attempt;
use triad::lowerbounds::triangle_edge::{verify, TaskVerdict};

fn main() {
    let part = 128;
    let dist = TripartiteMu::new(part, 1.2);
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    println!("streaming triangle-edge detection on μ (parts of {part}):");
    println!("  memory(edges)    found   wrong   missed   mean-bits");
    for budget in [4usize, 16, 64, 256, 1024] {
        let mut found = 0;
        let mut wrong = 0;
        let mut missed = 0;
        let mut bits = 0u64;
        let trials = 30;
        for t in 0..trials {
            let inst = dist.sample(&mut rng);
            let attempt = one_way_vee_attempt(&inst, budget, 77 * budget as u64 + t);
            bits += attempt.stats.total_bits;
            match verify(inst.graph(), &attempt) {
                TaskVerdict::Correct => found += 1,
                TaskVerdict::WrongEdge => wrong += 1,
                TaskVerdict::NoOutput => missed += 1,
            }
        }
        println!(
            "  {:>12}    {:>5}   {:>5}   {:>6}   {:>9.0}",
            budget,
            found,
            wrong,
            missed,
            bits as f64 / trials as f64
        );
    }
    println!(
        "\nany pass-limited algorithm inherits the Ω(n^¼) = Ω({:.0}) bit floor from the one-way bound",
        (3.0 * part as f64).powf(0.25)
    );
}
