//! Quickstart: test a partitioned graph for triangle-freeness with every
//! protocol in the library and compare their communication bills.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use triad::graph::generators::far_graph;
use triad::graph::partition::random_disjoint;
use triad::graph::{distance, Graph};
use triad::protocols::baseline::run_send_everything;
use triad::protocols::{SimProtocolKind, SimultaneousTester, Tuning, UnrestrictedTester};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 1200;
    let d = 8.0;
    let epsilon = 0.15;
    let k = 6;
    let mut rng = ChaCha8Rng::seed_from_u64(2024);

    // An ε-far input, split among k players with no duplication.
    let g = far_graph(n, d, epsilon, &mut rng)?;
    let parts = random_disjoint(&g, k, &mut rng);
    println!(
        "input: n = {n}, |E| = {}, avg degree = {:.1}, k = {k}",
        g.edge_count(),
        g.average_degree()
    );
    println!(
        "certified ε-far: {} (packing lower bound {})",
        distance::is_certifiably_far(&g, epsilon),
        distance::distance_bounds(&g).lower
    );
    println!();

    let tuning = Tuning::practical(epsilon);

    let unrestricted = UnrestrictedTester::new(tuning).run(&g, &parts, 1)?;
    report("unrestricted  Õ(k·(nd)^¼ + k²)", &g, unrestricted);

    let low = SimultaneousTester::new(tuning, SimProtocolKind::Low { avg_degree: d })
        .run(&g, &parts, 2)?;
    report("AlgLow (1 rd) Õ(k·√n)        ", &g, low);

    let oblivious =
        SimultaneousTester::new(tuning, SimProtocolKind::Oblivious).run(&g, &parts, 3)?;
    report("Oblivious     Õ(k·√n) no d   ", &g, oblivious);

    let exact = run_send_everything(&g, &parts, 4)?;
    report("exact baseline Θ(k·n·d)      ", &g, exact);

    Ok(())
}

fn report(name: &str, g: &Graph, run: triad::protocols::ProtocolRun) {
    let witness = match run.outcome.triangle() {
        Some(t) => {
            assert!(t.exists_in(g), "one-sided error violated");
            format!("triangle {t}")
        }
        None => "accepted".to_string(),
    };
    println!(
        "{name}  {:>9} bits  {:>3} rounds  → {witness}",
        run.stats.total_bits, run.stats.rounds
    );
}
