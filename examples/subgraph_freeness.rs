//! Beyond triangles: one-round `H`-freeness testing (the paper's §5
//! generalization direction).
//!
//! The induced-sampler mechanism of AlgHigh is pattern-agnostic; this
//! example tests K₄-freeness and C₅-freeness of partitioned graphs with
//! planted copies, and shows the sampler's cost growing with the pattern
//! size exactly as the `p = Θ((e(H)/εm)^{1/v(H)})` analysis predicts.
//!
//! ```text
//! cargo run --example subgraph_freeness
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use triad::graph::generators::planted_copies;
use triad::graph::partition::random_disjoint;
use triad::graph::subgraphs::Pattern;
use triad::protocols::subgraphs::run_h_freeness;
use triad::protocols::Tuning;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 2000;
    let k = 5;
    let tuning = Tuning::practical(0.2);
    let mut rng = ChaCha8Rng::seed_from_u64(77);

    for (name, pattern, copies) in [
        ("triangle K3", Pattern::triangle(), 260),
        ("clique   K4", Pattern::clique(4), 200),
        ("cycle    C5", Pattern::cycle(5), 160),
    ] {
        let g = planted_copies(n, &pattern, copies, n / 8, &mut rng)?;
        let parts = random_disjoint(&g, k, &mut rng);
        let d = g.average_degree();
        let mut found = 0;
        let mut bits = 0u64;
        let trials = 10;
        for seed in 0..trials {
            let run = run_h_freeness(tuning, pattern.clone(), &g, &parts, d, seed)?;
            bits += run.stats.total_bits;
            if let Some(hosts) = run.witness {
                // One-sided: every pattern edge must map to a real edge.
                for e in pattern.graph().edges() {
                    assert!(g.has_edge(triad::graph::Edge::new(
                        hosts[e.u().index()],
                        hosts[e.v().index()],
                    )));
                }
                found += 1;
            }
        }
        println!(
            "{name}: {copies} planted copies over {} edges → found {found}/{trials}, mean {} bits",
            g.edge_count(),
            bits / trials
        );
    }

    // Control: an H-free input never yields a witness.
    let bipartite = triad::graph::Graph::from_edges(400, (0..200u32).map(|i| (i, i + 200)));
    let parts = random_disjoint(&bipartite, k, &mut rng);
    for pattern in [Pattern::triangle(), Pattern::clique(4), Pattern::cycle(5)] {
        for seed in 0..5 {
            let run = run_h_freeness(tuning, pattern.clone(), &bipartite, &parts, 2.0, seed)?;
            assert!(run.witness.is_none());
        }
    }
    println!("control: bipartite matching accepted as K3/K4/C5-free in all runs ✓");
    Ok(())
}
