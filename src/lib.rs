//! # triad
//!
//! A Rust reproduction of *"On the Multiparty Communication Complexity of
//! Testing Triangle-Freeness"* (Fischer, Gershtein, Oshman — PODC 2017).
//!
//! This facade crate re-exports the workspace:
//!
//! * [`graph`] — graph substrate: representations, triangles, bucketing,
//!   generators, partitioning ([`triad_graph`]),
//! * [`comm`] — the coordinator-model communication substrate with exact
//!   bit accounting ([`triad_comm`]),
//! * [`protocols`] — the paper's protocols: building blocks, the
//!   unrestricted tester, the simultaneous testers, baselines
//!   ([`triad_protocols`]),
//! * [`lowerbounds`] — the §4 hard-instance constructions and
//!   information-theoretic tooling ([`triad_lowerbounds`]),
//! * [`congest`] — the CONGEST-model simulator with the distributed
//!   triangle tester, counter and C₄ detector ([`triad_congest`]).
//!
//! # Quickstart
//!
//! ```
//! use rand::SeedableRng;
//! use triad::graph::generators::far_graph;
//! use triad::graph::partition::random_disjoint;
//! use triad::protocols::{Tuning, UnrestrictedTester};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
//! let g = far_graph(300, 6.0, 0.2, &mut rng)?;
//! let parts = random_disjoint(&g, 4, &mut rng);
//! let tester = UnrestrictedTester::new(Tuning::practical(0.2));
//! let run = tester.run(&g, &parts, 7)?;
//! assert!(run.outcome.found_triangle(), "ε-far input must yield a witness");
//! println!("communication: {} bits", run.stats.total_bits);
//! # Ok(())
//! # }
//! ```

pub use triad_comm as comm;
pub use triad_congest as congest;
pub use triad_graph as graph;
pub use triad_lowerbounds as lowerbounds;
pub use triad_protocols as protocols;
